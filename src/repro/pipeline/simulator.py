"""Branch-granularity pipeline timing model.

The simulator replays :class:`repro.core.frontend.FrontEndEvent`
streams through a parametric out-of-order machine and accounts the two
quantities every experiment in the paper reports: **uops executed**
(correct-path plus wrong-path) and **cycles** (the retire-stream
completion time).

Two clocks drive the model:

- the **fetch clock** advances at ``fetch_width`` uops/cycle, pauses
  for pipeline-gating stalls (Figure 1) and for instruction-window
  (ROB) back-pressure, and jumps forward on misprediction recovery;
- the **retire clock** advances at the back-end's sustained rate
  (``1 / base_uop_cycles``) but can never run ahead of
  ``fetch time + depth`` for the uops being retired.

This split captures the effect the paper's conclusions rest on: the
front end normally runs far ahead of the back end, so a fetch stall on
a *correctly predicted* low-confidence branch is mostly absorbed by the
buffered backlog (small P), while the stall still keeps wrong-path uops
out of the machine when the branch was *mispredicted* (large U).
Performance loss emerges only when stalls starve the back end -- e.g.
right after a misprediction flush, when the window is empty.

Mechanisms modelled explicitly:

- **wrong-path fetch**: a branch mispredicted (after any reversal) at
  fetch time ``t`` resolves around ``t + depth``; wrong-path uops are
  fetched at full width until resolution, bounded by free window
  capacity and cut short by gating;
- **pipeline gating**: branches the policy marks ``GATE`` raise the
  low-confidence counter once their estimate is available
  (``estimator_latency`` after fetch) and lower it at resolution;
  fetch stalls while the counter is at or above the threshold;
- **branch reversal**: a correcting reversal eliminates the whole
  misprediction episode; a breaking reversal creates one;
- **misprediction recovery**: fetch restarts at resolution and the
  retire stream pays the refill (``depth``) on the next correct-path
  uops -- the squashed window cannot hide it.

Determinism: resolution jitter is a hash of (pc, sequence number), so a
given (trace, config, policy) triple always produces identical
statistics.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.common.bits import mix_hash
from repro.core.frontend import FrontEndEvent
from repro.core.reversal import BranchAction
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stats import SimStats

__all__ = ["PipelineSimulator"]

_INFINITY = float("inf")


@dataclass
class _InFlight:
    """One unresolved branch inside the machine."""

    resolve_time: float
    activation_time: float  # when the LC estimate can gate fetch
    counts_gating: bool

    def __lt__(self, other: "_InFlight") -> bool:
        return self.resolve_time < other.resolve_time


class PipelineSimulator:
    """Replays front-end event streams through the timing model."""

    def __init__(self, config: PipelineConfig):
        self.config = config
        self._reset()

    def _reset(self) -> None:
        self._fetch_time = 0.0
        self._retire_time = 0.0
        self._inflight = []  # heap of _InFlight by resolve_time
        self._seq = 0
        # Window occupancy: (retire_time, uops) per retired group, plus
        # the running totals needed for ROB back-pressure.
        self._retire_queue = deque()
        self._fetched_uops = 0.0
        self._retired_uops = 0.0

    # ------------------------------------------------------------------
    # In-flight branch bookkeeping
    # ------------------------------------------------------------------

    def _resolve_until(self, t: float) -> None:
        """Drop every branch whose resolution time has passed."""
        heap = self._inflight
        while heap and heap[0].resolve_time <= t:
            heapq.heappop(heap)

    def _active_lc_count(self, t: float) -> int:
        """Unresolved gating-counted branches with live estimates at ``t``."""
        return sum(
            1
            for b in self._inflight
            if b.counts_gating and b.activation_time <= t
        )

    def _earliest_lc_resolve(self, t: float) -> float:
        """Next resolution among active gating-counted branches."""
        times = [
            b.resolve_time
            for b in self._inflight
            if b.counts_gating and b.activation_time <= t
        ]
        return min(times) if times else _INFINITY

    def _next_event_after(self, t: float) -> float:
        """Next resolution or LC activation strictly after ``t``."""
        next_time = _INFINITY
        for b in self._inflight:
            if b.resolve_time > t:
                next_time = min(next_time, b.resolve_time)
            if b.counts_gating and b.activation_time > t:
                next_time = min(next_time, b.activation_time)
        return next_time

    # ------------------------------------------------------------------
    # Window (ROB) occupancy
    # ------------------------------------------------------------------

    def _drain_retired(self, t: float) -> None:
        """Account groups that have retired by time ``t``."""
        queue = self._retire_queue
        while queue and queue[0][0] <= t:
            _, uops = queue.popleft()
            self._retired_uops += uops

    def _window_free(self, t: float) -> float:
        """Free window slots at time ``t``."""
        self._drain_retired(t)
        return self.config.rob_size - (self._fetched_uops - self._retired_uops)

    def _wait_for_window(self, t: float, uops: float) -> float:
        """Earliest time >= ``t`` at which ``uops`` slots are free."""
        while self._window_free(t) < uops and self._retire_queue:
            t = max(t, self._retire_queue[0][0])
        return t

    # ------------------------------------------------------------------
    # Fetch engine
    # ------------------------------------------------------------------

    def _fetch_span(
        self,
        start: float,
        uop_budget: float,
        deadline: float,
        stats: SimStats,
        wrong_path: bool,
    ):
        """Advance fetch from ``start`` until the budget or deadline runs out.

        Returns ``(end_time, uops_fetched)``.  Fetch stalls while the
        low-confidence counter is at or above the gating threshold and
        while the instruction window is full.  Gating stall time is
        charged to ``stats.gated_cycles`` only on the correct path
        (wrong-path cycles were doomed regardless).
        """
        cfg = self.config
        per_uop = 1.0 / cfg.fetch_width
        throttling = cfg.gating_mode == "throttle" and cfg.throttle_factor > 0
        throttled_per_uop = (
            per_uop / cfg.throttle_factor if throttling else float("inf")
        )
        threshold = cfg.gating_threshold
        t = start
        fetched = 0.0
        stalled = False
        while uop_budget > 1e-9 and t < deadline - 1e-9:
            self._resolve_until(t)
            gated = self._active_lc_count(t) >= threshold
            if gated and not throttling:
                resume = min(self._earliest_lc_resolve(t), deadline)
                if not stalled:
                    stats.gating_stalls += 1
                    stalled = True
                if not wrong_path:
                    stats.gated_cycles += resume - t
                t = resume
                continue
            step_per_uop = throttled_per_uop if gated else per_uop
            stalled = False
            if not wrong_path:
                # Window back-pressure applies to correct-path fetch:
                # wait for one fetch group of room.
                group = min(uop_budget, float(cfg.fetch_width))
                t_ready = self._wait_for_window(t, group)
                if t_ready > t:
                    t = min(t_ready, deadline)
                    continue
            horizon = t + uop_budget * step_per_uop
            step_end = min(horizon, deadline, self._next_event_after(t))
            if step_end <= t:
                break
            span_uops = min((step_end - t) / step_per_uop, uop_budget)
            if not wrong_path:
                free = self._window_free(t)
                if span_uops > free:
                    span_uops = free
                    step_end = t + span_uops * step_per_uop
                if span_uops <= 1e-9:
                    # Window full, nothing retiring before the deadline.
                    if not self._retire_queue:
                        break
                    t = min(max(t, self._retire_queue[0][0]), deadline)
                    continue
                self._fetched_uops += span_uops
                if gated:
                    stats.throttled_cycles += step_end - t
            fetched += span_uops
            uop_budget -= span_uops
            t = step_end
        return t, fetched

    def _wrong_path_episode(
        self, t_fetch: float, t_resolve: float, stats: SimStats
    ) -> None:
        """Account one misprediction's wrong-path fetch window.

        Wrong-path uops enter from the branch's fetch until resolution
        at full fetch bandwidth, bounded by the instruction window size
        and cut short by gating.  They are squashed at recovery and
        never appear in the retire stream; window slots recycle fast
        enough during the multi-tens-of-cycles window that live
        occupancy is not the binding constraint (DESIGN.md note 2).
        """
        cfg = self.config
        cap = float(cfg.wrong_path_cap)
        _, fetched = self._fetch_span(
            t_fetch, cap, t_resolve, stats, wrong_path=True
        )
        potential = min(cap, (t_resolve - t_fetch) * cfg.fetch_width)
        stats.wrong_path_uops += fetched
        stats.wrong_path_uops_saved += max(0.0, potential - fetched)

    # ------------------------------------------------------------------
    # Per-branch processing
    # ------------------------------------------------------------------

    def _resolve_latency(self, pc: int) -> float:
        """Depth plus deterministic per-instance jitter."""
        cfg = self.config
        if cfg.resolve_jitter == 0:
            return float(cfg.depth)
        jitter = mix_hash((pc << 17) ^ self._seq) % (cfg.resolve_jitter + 1)
        return float(cfg.depth + jitter)

    def _retire_group(self, uops: int, fetch_done: float, floor: float) -> None:
        """Advance the retire clock over one correct-path uop group."""
        cfg = self.config
        backend = max(
            self._retire_time + uops * cfg.base_uop_cycles,
            fetch_done + cfg.depth,
        )
        self._retire_time = max(backend, floor)
        self._retire_queue.append((self._retire_time, float(uops)))

    def _process(self, event: FrontEndEvent, stats: SimStats) -> None:
        cfg = self.config
        uops = event.uops_before + 1
        end, _ = self._fetch_span(
            self._fetch_time, float(uops), _INFINITY, stats, wrong_path=False
        )
        self._fetch_time = end
        stats.correct_path_uops += uops

        t_fetch = self._fetch_time
        t_resolve = t_fetch + self._resolve_latency(event.pc)
        self._seq += 1

        counts_gating = event.decision.counts_toward_gating
        heapq.heappush(
            self._inflight,
            _InFlight(
                resolve_time=t_resolve,
                activation_time=t_fetch + cfg.estimator_latency,
                counts_gating=counts_gating,
            ),
        )

        stats.branches += 1
        if counts_gating:
            stats.gated_branches += 1
        if not event.predictor_correct:
            stats.raw_mispredictions += 1
        if event.decision.action is BranchAction.REVERSE:
            stats.reversals += 1
            if not event.predictor_correct and event.final_correct:
                stats.reversals_correcting += 1
            elif event.predictor_correct and not event.final_correct:
                stats.reversals_breaking += 1

        if not event.final_correct:
            stats.mispredictions += 1
            self._wrong_path_episode(t_fetch, t_resolve, stats)
            # Recovery: fetch restarts at resolution; the branch group
            # cannot retire before it resolved, which makes the refill
            # visible in the retire stream.
            stats.squash_cycles += t_resolve - self._fetch_time
            self._fetch_time = t_resolve
            self._retire_group(uops, t_fetch, floor=t_resolve)
        else:
            self._retire_group(uops, t_fetch, floor=0.0)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def checkpoint(self) -> tuple:
        """Resumable snapshot of the simulator's clocks and queues.

        Plain nested tuples (picklable, digest-stable).  The in-flight
        heap is canonicalised by sorting: heap layout among equal
        resolve times is unobservable (ties always resolve together in
        ``_resolve_until``), so the sorted form restores bit-identical
        behaviour regardless of the original insertion order.
        """
        return (
            "pipeline_simulator",
            self._fetch_time,
            self._retire_time,
            tuple(
                sorted(
                    (b.resolve_time, b.activation_time, b.counts_gating)
                    for b in self._inflight
                )
            ),
            self._seq,
            tuple((t, u) for t, u in self._retire_queue),
            self._fetched_uops,
            self._retired_uops,
        )

    def restore(self, state: tuple) -> None:
        """Restore a :meth:`checkpoint` snapshot."""
        if not state or state[0] != "pipeline_simulator":
            raise ValueError(
                f"not a pipeline simulator checkpoint: {state[:1]!r}"
            )
        (
            _,
            fetch_time,
            retire_time,
            inflight,
            seq,
            retire_queue,
            fetched_uops,
            retired_uops,
        ) = state
        self._fetch_time = float(fetch_time)
        self._retire_time = float(retire_time)
        heap = [
            _InFlight(
                resolve_time=float(resolve),
                activation_time=float(activation),
                counts_gating=bool(counts),
            )
            for resolve, activation, counts in inflight
        ]
        heapq.heapify(heap)
        self._inflight = heap
        self._seq = int(seq)
        self._retire_queue = deque((float(t), float(u)) for t, u in retire_queue)
        self._fetched_uops = float(fetched_uops)
        self._retired_uops = float(retired_uops)

    def simulate(
        self,
        events: Iterable[FrontEndEvent],
        stats: Optional[SimStats] = None,
        resume: bool = False,
    ) -> SimStats:
        """Replay a front-end event stream; returns accumulated stats.

        Internal time state is reset at the start of every call unless
        ``resume=True``, which continues from the current clocks (after
        :meth:`restore`, or from a previous ``simulate`` call on the
        same instance).  A resumed call adds this call's *cycle delta*
        to ``stats.total_cycles`` instead of overwriting it with the
        absolute retire clock, so per-segment stats from a resumed chain
        sum (:meth:`repro.pipeline.stats.SimStats.merge`) to exactly the
        monolithic totals.
        """
        if not resume:
            self._reset()
        retire_base = self._retire_time
        result = stats if stats is not None else SimStats()
        from repro import telemetry

        tel = telemetry.get_registry()
        if tel.enabled:
            # Callers may pass an accumulating SimStats: record this
            # call's contribution, not the running totals.
            base_wrong = result.wrong_path_uops
            base_stalls = result.gating_stalls
            base_correcting = result.reversals_correcting
            base_breaking = result.reversals_breaking
        for event in events:
            self._process(event, result)
        if resume:
            result.total_cycles += self._retire_time - retire_base
        else:
            result.total_cycles = self._retire_time
        if tel.enabled:
            buckets = telemetry.COUNT_BUCKETS
            tel.counter("pipeline_simulations_total").inc()
            tel.histogram(
                "pipeline_wrong_path_uops", buckets=buckets
            ).observe(result.wrong_path_uops - base_wrong)
            tel.histogram(
                "pipeline_gating_stalls", buckets=buckets
            ).observe(result.gating_stalls - base_stalls)
            tel.histogram(
                "pipeline_reversal_recoveries", buckets=buckets
            ).observe(result.reversals_correcting - base_correcting)
            tel.counter(
                "pipeline_reversals_total", kind="correcting"
            ).inc(result.reversals_correcting - base_correcting)
            tel.counter(
                "pipeline_reversals_total", kind="breaking"
            ).inc(result.reversals_breaking - base_breaking)
        return result

"""Reproduction of *Perceptron-Based Branch Confidence Estimation*
(Akkary, Srinivasan, Koltur, Patil, Refaai -- HPCA 2004).

The package implements the paper's perceptron confidence estimator and
every substrate its evaluation depends on: baseline branch predictors,
prior confidence estimators, a parametric out-of-order pipeline timing
model with pipeline gating and branch reversal, and a synthetic
SPECint2000-like trace generator.

Quickstart::

    from repro import (
        generate_benchmark_trace,
        make_baseline_hybrid,
        PerceptronConfidenceEstimator,
        FrontEnd,
    )

    trace = generate_benchmark_trace("gcc", n_branches=50_000, seed=1)
    predictor = make_baseline_hybrid()
    estimator = PerceptronConfidenceEstimator(threshold=0)
    result = FrontEnd(predictor, estimator).replay(trace, warmup=10_000)
    m = result.metrics.overall
    print(f"PVN={m.pvn:.0%}  Spec={m.spec:.0%}")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.analysis import (
    OutputDensity,
    ThresholdPoint,
    format_table,
    sweep_estimator_thresholds,
)
from repro.core import (
    BranchAction,
    ConfidenceEstimator,
    ConfidenceLevel,
    ConfidenceMatrix,
    ConfidenceSignal,
    FrontEnd,
    FrontEndEvent,
    FrontEndResult,
    GatingConfig,
    GatingOnlyPolicy,
    JRSEstimator,
    LowConfidenceCounter,
    MetricsCollector,
    NoSpeculationControl,
    PatternEstimator,
    PerceptronConfidenceEstimator,
    PolicyDecision,
    SmithEstimator,
    SpeculationPolicy,
    ThreeRegionPolicy,
)
from repro.pipeline import (
    BASELINE_40X4,
    PIPELINE_PRESETS,
    STANDARD_20X4,
    WIDE_20X8,
    GatingRun,
    PipelineConfig,
    PipelineSimulator,
    SimStats,
    compare_policies,
    run_machine,
)
from repro.predictors import (
    BimodalPredictor,
    BranchPredictor,
    CombinedPredictor,
    GSharePredictor,
    LocalPredictor,
    PerceptronPredictor,
    make_baseline_hybrid,
    make_gshare_perceptron_hybrid,
)
from repro.trace import (
    BENCHMARK_NAMES,
    BranchRecord,
    Trace,
    TraceGenerator,
    WorkloadSpec,
    generate_benchmark_trace,
    load_trace,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "OutputDensity",
    "ThresholdPoint",
    "format_table",
    "sweep_estimator_thresholds",
    # core
    "BranchAction",
    "ConfidenceEstimator",
    "ConfidenceLevel",
    "ConfidenceMatrix",
    "ConfidenceSignal",
    "FrontEnd",
    "FrontEndEvent",
    "FrontEndResult",
    "GatingConfig",
    "GatingOnlyPolicy",
    "JRSEstimator",
    "LowConfidenceCounter",
    "MetricsCollector",
    "NoSpeculationControl",
    "PatternEstimator",
    "PerceptronConfidenceEstimator",
    "PolicyDecision",
    "SmithEstimator",
    "SpeculationPolicy",
    "ThreeRegionPolicy",
    # pipeline
    "BASELINE_40X4",
    "PIPELINE_PRESETS",
    "STANDARD_20X4",
    "WIDE_20X8",
    "GatingRun",
    "PipelineConfig",
    "PipelineSimulator",
    "SimStats",
    "compare_policies",
    "run_machine",
    # predictors
    "BimodalPredictor",
    "BranchPredictor",
    "CombinedPredictor",
    "GSharePredictor",
    "LocalPredictor",
    "PerceptronPredictor",
    "make_baseline_hybrid",
    "make_gshare_perceptron_hybrid",
    # trace
    "BENCHMARK_NAMES",
    "BranchRecord",
    "Trace",
    "TraceGenerator",
    "WorkloadSpec",
    "generate_benchmark_trace",
    "load_trace",
    "save_trace",
]

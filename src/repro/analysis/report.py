"""Markdown report generation for experiment results.

Renders any collection of experiment results (objects exposing rows via
``as_dict`` and a ``format()`` summary) into one Markdown document with
a section per experiment -- the machine-generated counterpart of the
hand-curated EXPERIMENTS.md.  Used by ``python -m repro.experiments
--markdown <path>`` and directly scriptable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.export import rows_from_result

__all__ = [
    "markdown_table",
    "render_report",
    "render_verification_report",
    "write_report",
]


def markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "*(no rows)*"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        body.append("| " + " | ".join(cells) + " |")
    return "\n".join([header, rule] + body)


def render_report(
    results: Dict[str, object],
    title: str = "Experiment report",
    preamble: Optional[str] = None,
    records: Optional[Sequence[object]] = None,
) -> str:
    """Render experiment results into one Markdown document.

    Args:
        results: Mapping of experiment id to result object (as returned
            by :func:`repro.experiments.runner.run_all`).
        title: Document heading.
        preamble: Optional text inserted after the heading.
        records: Optional run records (objects with ``as_dict``, e.g.
            :class:`repro.experiments.runner.ExperimentRecord`) rendered
            as a timing/cache summary table after the preamble.
    """
    lines: List[str] = [f"# {title}", ""]
    if preamble:
        lines += [preamble, ""]
    if records:
        lines += [
            "## Run summary",
            "",
            markdown_table([r.as_dict() for r in records]),
            "",
        ]
    for name, result in results.items():
        lines.append(f"## {name}")
        lines.append("")
        try:
            rows = rows_from_result(result)
        except TypeError:
            rows = None
        if rows:
            lines.append(markdown_table(rows))
        elif hasattr(result, "format"):
            lines.append("```")
            lines.append(result.format())
            lines.append("```")
        else:
            lines.append(f"*(unrenderable result of type "
                         f"{type(result).__name__})*")
        lines.append("")
    return "\n".join(lines)


def render_verification_report(
    layers: Sequence[tuple],
    title: str = "Verification report",
    failures: Sequence[str] = (),
) -> str:
    """Render ``python -m repro.verify`` layer outcomes as Markdown.

    Args:
        layers: ``(name, ok, detail)`` triples, one per layer run.
        title: Document heading.
        failures: Flat failure strings, listed verbatim when non-empty.
    """
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        markdown_table(
            [
                {
                    "layer": name,
                    "status": "pass" if ok else "FAIL",
                    "detail": detail,
                }
                for name, ok, detail in layers
            ],
            columns=["layer", "status", "detail"],
        )
    )
    lines.append("")
    if failures:
        lines += ["## Failures", ""]
        lines += [f"- {failure}" for failure in failures]
        lines.append("")
    else:
        lines += ["All layers passed.", ""]
    return "\n".join(lines)


def write_report(
    results: Dict[str, object],
    path: str,
    title: str = "Experiment report",
    preamble: Optional[str] = None,
    records: Optional[Sequence[object]] = None,
) -> None:
    """Render and write a Markdown report to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            render_report(
                results, title=title, preamble=preamble, records=records
            )
        )
        fh.write("\n")

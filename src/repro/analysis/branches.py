"""Per-static-branch predictability metrics and the H2P taxonomy.

The aggregate misprediction rate hides *where* mispredictions come
from.  Following the hard-to-predict-branch (H2P) literature, this
module profiles a trace (or a replay's event stream) per static branch:
dynamic execution count, direction entropy, and -- when predictor
events are available -- accuracy, then classifies each static into a
small taxonomy whose interesting corner is the H2P class: few statics,
huge dynamic counts, stubbornly low accuracy.

Entropy here is the *direction* entropy -- the Shannon entropy of the
branch's taken/not-taken distribution, normalised to [0, 1]:

    ``entropy = -(p*log2(p) + q*log2(q))``, ``p`` the taken rate.

It is a function of the (taken, not-taken) *counts* only, so it is
invariant under any permutation of the branch's outcome sequence and
exactly 0 for constant-direction branches.  It upper-bounds nothing
about history predictability (a strict TNTN alternator has entropy 1
and accuracy ~1), which is precisely why the taxonomy combines it with
*measured* accuracy when events are available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.trace.record import BranchRecord

__all__ = [
    "BranchProfile",
    "TraceBranchSummary",
    "direction_entropy",
    "profile_records",
    "profile_events",
    "classify_taxonomy",
    "TAXONOMY_CLASSES",
]

#: Taxonomy labels, from easiest to hardest:
#:
#: - ``constant``: one direction only -- free for any predictor;
#: - ``biased``: strongly skewed (entropy below the bias threshold);
#: - ``mixed``: mixed directions, but either cold or (when accuracy is
#:   known) adequately predicted;
#: - ``h2p``: hot (dynamic-count share above threshold percentile) and
#:   badly predicted -- the branches the H2P literature is about.
TAXONOMY_CLASSES: Tuple[str, ...] = ("constant", "biased", "mixed", "h2p")

# Taxonomy thresholds.  A static is "hot" when it carries at least
# _HOT_SHARE of the dynamic executions seen, "biased" below
# _BIAS_ENTROPY (~ p >= 0.95 one-way), and H2P when hot, non-trivially
# mixed and -- given events -- under _H2P_ACCURACY.
_HOT_SHARE = 0.01
_BIAS_ENTROPY = 0.2864  # normalised entropy at p = 0.95
_H2P_ACCURACY = 0.97


def direction_entropy(taken: int, not_taken: int) -> float:
    """Normalised direction entropy of a (taken, not-taken) count pair.

    Permutation-invariant by construction (counts only), bounded to
    [0, 1], and exactly 0.0 for constant-direction branches and for
    branches never executed.
    """
    if taken < 0 or not_taken < 0:
        raise ValueError(
            f"counts must be non-negative, got ({taken}, {not_taken})"
        )
    total = taken + not_taken
    if total == 0 or taken == 0 or not_taken == 0:
        return 0.0
    p = taken / total
    q = not_taken / total
    h = -(p * math.log2(p) + q * math.log2(q))
    # log2 rounding can push the sum a hair past 1.0; clamp the bound.
    return min(1.0, max(0.0, h))


@dataclass(frozen=True)
class BranchProfile:
    """Aggregated per-static-branch statistics.

    Attributes:
        pc: Static branch address.
        executions: Dynamic execution count.
        taken: Taken-outcome count.
        mispredicts: Predictor mispredict count, or ``None`` when the
            profile came from raw records (no predictor in the loop).
    """

    pc: int
    executions: int
    taken: int
    mispredicts: Optional[int] = None

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def entropy(self) -> float:
        """Normalised direction entropy in [0, 1]."""
        return direction_entropy(self.taken, self.executions - self.taken)

    @property
    def accuracy(self) -> Optional[float]:
        if self.mispredicts is None or not self.executions:
            return None
        return 1.0 - self.mispredicts / self.executions

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe scalar row (result-store friendly)."""
        row: Dict[str, object] = {
            "pc": self.pc,
            "executions": self.executions,
            "taken": self.taken,
            "taken_rate": self.taken_rate,
            "entropy": self.entropy,
        }
        if self.mispredicts is not None:
            row["mispredicts"] = self.mispredicts
            row["accuracy"] = self.accuracy
        return row


def classify_taxonomy(profile: BranchProfile, total_executions: int) -> str:
    """Assign one :data:`TAXONOMY_CLASSES` label to a branch profile.

    ``total_executions`` is the dynamic count of the whole stream the
    profile was measured over (hotness is a *share*, so the taxonomy is
    stable under trace length).  Without accuracy data the H2P class
    falls back to the entropy proxy: hot and high-entropy.
    """
    if profile.entropy == 0.0:
        return "constant"
    if profile.entropy < _BIAS_ENTROPY:
        return "biased"
    share = profile.executions / total_executions if total_executions else 0.0
    hot = share >= _HOT_SHARE
    accuracy = profile.accuracy
    if hot and accuracy is not None and accuracy < _H2P_ACCURACY:
        return "h2p"
    if hot and accuracy is None and profile.entropy >= 2 * _BIAS_ENTROPY:
        return "h2p"
    return "mixed"


@dataclass(frozen=True)
class TraceBranchSummary:
    """Per-branch profiles plus the stream-level taxonomy breakdown."""

    profiles: Tuple[BranchProfile, ...]
    total_executions: int

    def taxonomy(self) -> Dict[str, List[BranchProfile]]:
        out: Dict[str, List[BranchProfile]] = {
            cls: [] for cls in TAXONOMY_CLASSES
        }
        for profile in self.profiles:
            out[classify_taxonomy(profile, self.total_executions)].append(
                profile
            )
        return out

    def h2p_branches(self) -> List[BranchProfile]:
        return self.taxonomy()["h2p"]

    def rows(self) -> List[Dict[str, object]]:
        """JSON-safe rows, hottest first, with the taxonomy label."""
        rows = []
        for profile in sorted(
            self.profiles, key=lambda p: (-p.executions, p.pc)
        ):
            row = profile.as_dict()
            row["taxonomy"] = classify_taxonomy(
                profile, self.total_executions
            )
            rows.append(row)
        return rows


def _summarise(
    counts: Dict[int, List[int]], with_mispredicts: bool
) -> TraceBranchSummary:
    profiles = tuple(
        BranchProfile(
            pc=pc,
            executions=stats[0],
            taken=stats[1],
            mispredicts=stats[2] if with_mispredicts else None,
        )
        for pc, stats in sorted(counts.items())
    )
    total = sum(p.executions for p in profiles)
    tel = telemetry.get_registry()
    if tel.enabled:
        tel.counter("branch_entropy_profiles_total").inc(len(profiles))
    return TraceBranchSummary(profiles=profiles, total_executions=total)


def profile_records(records: Iterable[BranchRecord]) -> TraceBranchSummary:
    """Profile a raw record stream (no predictor: entropy/counts only)."""
    counts: Dict[int, List[int]] = {}
    for record in records:
        stats = counts.get(record.pc)
        if stats is None:
            stats = counts[record.pc] = [0, 0, 0]
        stats[0] += 1
        if record.taken:
            stats[1] += 1
    return _summarise(counts, with_mispredicts=False)


def profile_events(events: Iterable) -> TraceBranchSummary:
    """Profile a replay event stream (FrontEndEvent-shaped objects).

    Uses ``pc``, ``taken`` and ``predictor_correct`` -- the per-branch
    accuracy column that turns the entropy proxy into the measured H2P
    taxonomy.
    """
    counts: Dict[int, List[int]] = {}
    for event in events:
        stats = counts.get(event.pc)
        if stats is None:
            stats = counts[event.pc] = [0, 0, 0]
        stats[0] += 1
        if event.taken:
            stats[1] += 1
        if not event.predictor_correct:
            stats[2] += 1
    return _summarise(counts, with_mispredicts=True)

"""Perceptron output density analysis (Figures 4-7).

Section 5.3 explains *why* correct/incorrect training beats
taken/not-taken training by plotting the density function of the
perceptron output separately for correctly predicted branches (CB) and
mispredicted branches (MB).  :class:`OutputDensity` reproduces that
analysis: histograms over the two populations, zooming, and the
three-region decomposition (reversal region where MB outnumbers CB,
gating region where the MB:CB ratio is still high, high-confidence
region below).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.frontend import FrontEndResult

__all__ = ["OutputDensity", "RegionSummary"]


@dataclass(frozen=True)
class RegionSummary:
    """Counts within one output-value region.

    Attributes:
        low: Inclusive lower edge of the region (-inf allowed).
        high: Exclusive upper edge of the region (+inf allowed).
        correct: Correctly predicted branches with output in region.
        mispredicted: Mispredicted branches with output in region.
    """

    low: float
    high: float
    correct: int
    mispredicted: int

    @property
    def total(self) -> int:
        """All branches whose output fell in the region."""
        return self.correct + self.mispredicted

    @property
    def mispredict_fraction(self) -> float:
        """MB share of the region -- the PVN of flagging this region low."""
        return self.mispredicted / self.total if self.total else 0.0

    @property
    def mb_dominates(self) -> bool:
        """True when mispredictions outnumber correct predictions.

        This is the Figure 5 criterion for the reversal region: if most
        branches landing here are mispredicted, inverting the
        prediction wins on average.
        """
        return self.mispredicted > self.correct


class OutputDensity:
    """CB/MB histograms of a confidence estimator's raw output."""

    def __init__(
        self,
        outputs_correct: Sequence[float],
        outputs_mispredicted: Sequence[float],
    ):
        self._correct = np.asarray(outputs_correct, dtype=np.float64)
        self._mispredicted = np.asarray(outputs_mispredicted, dtype=np.float64)

    @classmethod
    def from_frontend_result(cls, result: FrontEndResult) -> "OutputDensity":
        """Build from a replay run with ``collect_outputs=True``."""
        if not result.outputs_correct and not result.outputs_mispredicted:
            raise ValueError(
                "front-end result carries no raw outputs; run the FrontEnd "
                "with collect_outputs=True"
            )
        return cls(result.outputs_correct, result.outputs_mispredicted)

    @property
    def correct_outputs(self) -> np.ndarray:
        """Raw outputs of correctly predicted branches (CB)."""
        return self._correct

    @property
    def mispredicted_outputs(self) -> np.ndarray:
        """Raw outputs of mispredicted branches (MB)."""
        return self._mispredicted

    def histogram(
        self,
        bins: int = 60,
        value_range: Optional[Tuple[float, float]] = None,
    ):
        """Shared-bin histograms for the CB and MB populations.

        Returns ``(bin_edges, cb_counts, mb_counts)``.  ``value_range``
        implements the Figure 5 / Figure 7 zooms; by default the full
        span of both populations is covered.
        """
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        if value_range is None:
            combined = np.concatenate([self._correct, self._mispredicted])
            if combined.size == 0:
                raise ValueError("no outputs recorded")
            lo, hi = float(combined.min()), float(combined.max())
            if lo == hi:
                lo, hi = lo - 0.5, hi + 0.5
            value_range = (lo, hi)
        cb_counts, edges = np.histogram(
            self._correct, bins=bins, range=value_range
        )
        mb_counts, _ = np.histogram(
            self._mispredicted, bins=bins, range=value_range
        )
        return edges, cb_counts, mb_counts

    def region(self, low: float, high: float) -> RegionSummary:
        """Counts for outputs in ``[low, high)``."""
        cb = int(np.count_nonzero((self._correct >= low) & (self._correct < high)))
        mb = int(
            np.count_nonzero(
                (self._mispredicted >= low) & (self._mispredicted < high)
            )
        )
        return RegionSummary(low=low, high=high, correct=cb, mispredicted=mb)

    def three_regions(
        self, reverse_threshold: float = 30.0, gate_threshold: float = -30.0
    ):
        """The Section 5.3 decomposition of the output axis.

        Returns ``(reversal, gating, high_confidence)`` region
        summaries: outputs above ``reverse_threshold``, between the two
        thresholds, and below ``gate_threshold``.
        """
        if gate_threshold > reverse_threshold:
            raise ValueError(
                f"gate_threshold ({gate_threshold}) must be <= "
                f"reverse_threshold ({reverse_threshold})"
            )
        inf = float("inf")
        return (
            self.region(reverse_threshold, inf),
            self.region(gate_threshold, reverse_threshold),
            self.region(-inf, gate_threshold),
        )

    def crossover_output(
        self, bins: int = 120, min_bin_count: int = 5, min_mb_share: float = 0.02
    ) -> Optional[float]:
        """Smallest output above which MB counts exceed CB counts.

        Locates the empirical reversal threshold: the output value past
        which mispredictions dominate.  Bins occupied by fewer than
        ``min_bin_count`` branches are ignored, and the dominated tail
        must hold at least ``min_mb_share`` of all mispredictions --
        otherwise sparse outliers would masquerade as a region.  Returns
        ``None`` when no such region exists (the tnt-trained
        estimator's signature, Figure 7).
        """
        edges, cb, mb = self.histogram(bins=bins)
        centres = (edges[:-1] + edges[1:]) / 2.0
        significant = (cb + mb) >= min_bin_count
        total_mb = mb.sum()
        if total_mb == 0:
            return None
        dominated = np.nonzero((mb > cb) & significant)[0]
        for idx in dominated:
            tail = slice(idx, None)
            tail_sig = significant[tail]
            if not np.all((mb[tail] >= cb[tail])[tail_sig]):
                continue
            if mb[tail].sum() >= min_mb_share * total_mb:
                return float(centres[idx])
        return None

    def summary(self) -> dict:
        """Compact description used by experiment reports."""
        cb, mb = self._correct, self._mispredicted
        return {
            "correct_branches": int(cb.size),
            "mispredicted_branches": int(mb.size),
            "cb_mean": float(cb.mean()) if cb.size else 0.0,
            "mb_mean": float(mb.mean()) if mb.size else 0.0,
            "cb_median": float(np.median(cb)) if cb.size else 0.0,
            "mb_median": float(np.median(mb)) if mb.size else 0.0,
            "crossover": self.crossover_output(),
        }

"""Accuracy/coverage curve analysis.

Table 3 samples each estimator at four thresholds; these helpers treat
the full (Spec, PVN) trade-off as a curve so estimators can be compared
beyond individual operating points:

- :class:`ConfidenceCurve` holds threshold-ordered operating points and
  answers interpolation queries ("what PVN at Spec = 40%?");
- :func:`dominates` checks Pareto dominance between two curves;
- :func:`area_under_curve` summarises a curve as a single scalar
  (the probability-weighted accuracy across coverage levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.sweep import ThresholdPoint

__all__ = ["ConfidenceCurve", "dominates", "area_under_curve"]


@dataclass(frozen=True)
class CurvePoint:
    """One (coverage, accuracy) operating point."""

    spec: float
    pvn: float
    threshold: float

    def __post_init__(self):
        if not 0.0 <= self.spec <= 1.0:
            raise ValueError(f"spec must be in [0, 1], got {self.spec}")
        if not 0.0 <= self.pvn <= 1.0:
            raise ValueError(f"pvn must be in [0, 1], got {self.pvn}")


class ConfidenceCurve:
    """A threshold sweep viewed as a Spec-vs-PVN curve.

    Points are sorted by coverage.  Between sampled points the curve is
    linearly interpolated; outside the sampled range queries return
    ``None`` (extrapolating confidence trade-offs is misleading).
    """

    def __init__(self, points: Sequence[CurvePoint], name: str = "curve"):
        if not points:
            raise ValueError("a curve needs at least one point")
        self._points: List[CurvePoint] = sorted(points, key=lambda p: p.spec)
        self.name = name

    @classmethod
    def from_threshold_points(
        cls, points: Sequence[ThresholdPoint], name: str = "curve"
    ) -> "ConfidenceCurve":
        """Build from :func:`repro.analysis.sweep.sweep_estimator_thresholds`."""
        return cls(
            [
                CurvePoint(spec=p.spec, pvn=p.pvn, threshold=p.threshold)
                for p in points
            ],
            name=name,
        )

    @property
    def points(self) -> Tuple[CurvePoint, ...]:
        """Coverage-ordered operating points."""
        return tuple(self._points)

    @property
    def coverage_range(self) -> Tuple[float, float]:
        """(min, max) sampled coverage."""
        return (self._points[0].spec, self._points[-1].spec)

    def pvn_at(self, spec: float) -> Optional[float]:
        """Interpolated accuracy at a coverage level, or None outside
        the sampled range."""
        pts = self._points
        if spec < pts[0].spec or spec > pts[-1].spec:
            return None
        for left, right in zip(pts, pts[1:]):
            if left.spec <= spec <= right.spec:
                span = right.spec - left.spec
                if span == 0:
                    return max(left.pvn, right.pvn)
                frac = (spec - left.spec) / span
                return left.pvn + frac * (right.pvn - left.pvn)
        return pts[-1].pvn

    def best_threshold_for_coverage(self, spec: float) -> Optional[float]:
        """Threshold of the nearest sampled point at/above a coverage."""
        candidates = [p for p in self._points if p.spec >= spec]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.spec).threshold

    def __len__(self) -> int:
        return len(self._points)


def dominates(
    a: ConfidenceCurve, b: ConfidenceCurve, samples: int = 20
) -> bool:
    """True if curve ``a`` is at least as accurate as ``b`` at every
    mutually covered coverage level (and strictly better somewhere)."""
    lo = max(a.coverage_range[0], b.coverage_range[0])
    hi = min(a.coverage_range[1], b.coverage_range[1])
    if hi <= lo:
        return False
    strictly_better = False
    for i in range(samples):
        spec = lo + (hi - lo) * i / (samples - 1)
        pa, pb = a.pvn_at(spec), b.pvn_at(spec)
        if pa is None or pb is None:
            continue
        if pa < pb - 1e-12:
            return False
        if pa > pb + 1e-12:
            strictly_better = True
    return strictly_better


def area_under_curve(curve: ConfidenceCurve) -> float:
    """Trapezoidal area of PVN over the sampled coverage range.

    Normalised by the coverage span, so the value is the mean accuracy
    across the curve's coverage range (0..1); single-point curves return
    that point's accuracy.
    """
    pts = curve.points
    if len(pts) == 1:
        return pts[0].pvn
    area = 0.0
    for left, right in zip(pts, pts[1:]):
        area += (right.spec - left.spec) * (left.pvn + right.pvn) / 2.0
    span = pts[-1].spec - pts[0].spec
    return area / span if span > 0 else pts[0].pvn

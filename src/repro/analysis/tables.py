"""Plain-text table rendering for experiment reports.

The benchmark harness prints each reproduced table/figure as an ASCII
table matching the paper's row/column structure, so paper-vs-measured
comparison is a side-by-side read.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table"]


def _render_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Args:
        rows: Sequence of mappings; missing keys render as ``-``.
        columns: Column order; defaults to first row's key order.
        title: Optional heading line.
    """
    if not rows:
        return (title + "\n") if title else ""
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_render_cell(row.get(c)) for c in columns])
    widths = [
        max(len(line[i]) for line in rendered) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header, *body = rendered
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)

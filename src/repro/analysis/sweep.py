"""Threshold sweeps over confidence estimators.

Table 3 reports (PVN, Spec) pairs for a ladder of thresholds on each
estimator.  :func:`sweep_estimator_thresholds` replays one trace per
threshold with freshly built structures, producing the full trade-off
curve; experiments slice out the paper's specific threshold values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.estimator import ConfidenceEstimator
from repro.core.frontend import FrontEnd
from repro.predictors.base import BranchPredictor
from repro.trace.record import Trace

__all__ = ["ThresholdPoint", "sweep_estimator_thresholds"]


@dataclass(frozen=True)
class ThresholdPoint:
    """One point on an estimator's accuracy/coverage curve."""

    threshold: float
    pvn: float
    spec: float
    flagged_low_fraction: float
    misprediction_rate: float

    def as_row(self) -> dict:
        """Table 3 style row."""
        return {
            "lambda": self.threshold,
            "PVN_pct": round(100.0 * self.pvn, 1),
            "Spec_pct": round(100.0 * self.spec, 1),
        }


def sweep_estimator_thresholds(
    trace: Trace,
    make_predictor: Callable[[], BranchPredictor],
    make_estimator: Callable[[float], ConfidenceEstimator],
    thresholds: Sequence[float],
    warmup: int = 0,
) -> List[ThresholdPoint]:
    """Measure (PVN, Spec) at each threshold over one trace.

    Each threshold gets a fresh predictor and estimator so no learning
    state leaks across sweep points (the estimators' training rules
    depend on their classification, hence on the threshold).
    """
    points: List[ThresholdPoint] = []
    for threshold in thresholds:
        predictor = make_predictor()
        estimator = make_estimator(threshold)
        frontend = FrontEnd(predictor, estimator)
        result = frontend.replay(trace, warmup=warmup)
        matrix = result.metrics.overall
        points.append(
            ThresholdPoint(
                threshold=float(threshold),
                pvn=matrix.pvn,
                spec=matrix.spec,
                flagged_low_fraction=(
                    matrix.flagged_low / matrix.total if matrix.total else 0.0
                ),
                misprediction_rate=matrix.misprediction_rate,
            )
        )
    return points

"""Export experiment results to CSV / JSON.

Every experiment result in :mod:`repro.experiments` exposes rows as
dictionaries (via ``as_dict`` on its row objects or a ``rows`` list);
these helpers serialise those rows for downstream plotting without
adding any dependency beyond the standard library.
"""

from __future__ import annotations

import csv
import json
from typing import List, Mapping, Optional, Sequence

__all__ = ["rows_from_result", "write_csv", "write_json"]


def rows_from_result(result) -> List[dict]:
    """Extract dict rows from an experiment result object.

    Accepts anything with a ``rows`` attribute whose elements expose
    ``as_dict()``, a ``cells`` attribute likewise, or a plain sequence
    of dicts.
    """
    for attr in ("rows", "cells"):
        items = getattr(result, attr, None)
        if items is not None:
            out = []
            for item in items:
                if isinstance(item, Mapping):
                    out.append(dict(item))
                elif hasattr(item, "as_dict"):
                    out.append(item.as_dict())
                else:
                    raise TypeError(
                        f"{attr} element {type(item).__name__} has no as_dict()"
                    )
            return out
    if isinstance(result, Sequence):
        return [dict(r) for r in result]
    raise TypeError(
        f"cannot extract rows from {type(result).__name__}: expected "
        "'rows', 'cells', or a sequence of mappings"
    )


def write_csv(result, path: str, columns: Optional[Sequence[str]] = None) -> int:
    """Write an experiment result to CSV; returns the row count."""
    rows = rows_from_result(result)
    if not rows:
        with open(path, "w", newline="", encoding="utf-8"):
            pass
        return 0
    fieldnames = list(columns) if columns else list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def write_json(result, path: str, label: Optional[str] = None) -> int:
    """Write an experiment result to JSON; returns the row count."""
    rows = rows_from_result(result)
    payload = {"label": label, "rows": rows} if label else {"rows": rows}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    return len(rows)

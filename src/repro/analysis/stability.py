"""Multi-seed stability analysis.

Every result in this reproduction is deterministic given a seed; this
module quantifies how much the conclusions depend on the particular
seed by re-running a measurement across seeds and summarising the
spread.  Used by the ``seed_stability`` extension experiment and
available for any user metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

__all__ = ["MetricSpread", "sweep_seeds"]


@dataclass(frozen=True)
class MetricSpread:
    """Summary statistics of one metric across seeds."""

    name: str
    values: tuple

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for fewer than two samples)."""
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (self.n - 1)
        )

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def relative_std(self) -> float:
        """std / |mean| -- the headline stability number."""
        mu = self.mean
        return self.std / abs(mu) if mu else 0.0

    def as_dict(self) -> dict:
        return {
            "metric": self.name,
            "mean": round(self.mean, 3),
            "std": round(self.std, 3),
            "min": round(self.min, 3),
            "max": round(self.max, 3),
            "rel std %": round(100 * self.relative_std, 1),
        }


def sweep_seeds(
    measure: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> List[MetricSpread]:
    """Run ``measure(seed)`` per seed and summarise each returned metric.

    ``measure`` returns a flat dict of metric name to value; all seeds
    must return the same metric set.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    per_metric: Dict[str, List[float]] = {}
    expected: set = set()
    for i, seed in enumerate(seeds):
        metrics = measure(int(seed))
        if i == 0:
            expected = set(metrics)
        elif set(metrics) != expected:
            raise ValueError(
                f"seed {seed} returned metrics {sorted(metrics)}, "
                f"expected {sorted(expected)}"
            )
        for name, value in metrics.items():
            per_metric.setdefault(name, []).append(float(value))
    return [
        MetricSpread(name=name, values=tuple(values))
        for name, values in sorted(per_metric.items())
    ]

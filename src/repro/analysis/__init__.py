"""Analysis utilities: output densities, threshold sweeps, reports.

- :mod:`repro.analysis.density` -- the perceptron output density
  functions of Figures 4-7, split by prediction outcome, with the
  three-region decomposition of Section 5.3.
- :mod:`repro.analysis.branches` -- per-static-branch predictability
  profiles (direction entropy, accuracy) and the H2P taxonomy.
- :mod:`repro.analysis.sweep` -- threshold sweeps producing
  (Spec, PVN) curves and U/P frontiers.
- :mod:`repro.analysis.tables` -- plain-text table rendering used by
  the experiment harness and examples.
"""

from repro.analysis.branches import (
    TAXONOMY_CLASSES,
    BranchProfile,
    TraceBranchSummary,
    classify_taxonomy,
    direction_entropy,
    profile_events,
    profile_records,
)
from repro.analysis.curves import (
    ConfidenceCurve,
    area_under_curve,
    dominates,
)
from repro.analysis.density import OutputDensity, RegionSummary
from repro.analysis.export import rows_from_result, write_csv, write_json
from repro.analysis.report import markdown_table, render_report, write_report
from repro.analysis.stability import MetricSpread, sweep_seeds
from repro.analysis.sweep import ThresholdPoint, sweep_estimator_thresholds
from repro.analysis.tables import format_table
from repro.analysis.textplot import density_plot, frontier_plot
from repro.analysis.timeline import MetricTimeline, WindowPoint

__all__ = [
    "TAXONOMY_CLASSES",
    "BranchProfile",
    "TraceBranchSummary",
    "classify_taxonomy",
    "direction_entropy",
    "profile_events",
    "profile_records",
    "ConfidenceCurve",
    "area_under_curve",
    "dominates",
    "OutputDensity",
    "RegionSummary",
    "markdown_table",
    "render_report",
    "write_report",
    "MetricSpread",
    "sweep_seeds",
    "ThresholdPoint",
    "sweep_estimator_thresholds",
    "format_table",
    "rows_from_result",
    "write_csv",
    "write_json",
    "density_plot",
    "frontier_plot",
    "MetricTimeline",
    "WindowPoint",
]

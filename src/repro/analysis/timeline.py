"""Windowed metric timelines.

The confidence estimators train online, so their quality evolves over a
trace: early windows reflect cold tables, late windows the warm
steady state.  :class:`MetricTimeline` accumulates per-window confusion
matrices so warm-up behaviour, phase changes and convergence can be
observed directly -- this is also the measurement behind the
``warmup_curve`` extension experiment, which quantifies how much of the
paper-vs-reproduction metric gap is training budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.metrics import ConfidenceMatrix

__all__ = ["WindowPoint", "MetricTimeline"]


@dataclass(frozen=True)
class WindowPoint:
    """One window's aggregate metrics."""

    window_index: int
    start_branch: int
    matrix: ConfidenceMatrix

    def as_dict(self) -> dict:
        return {
            "window": self.window_index,
            "start": self.start_branch,
            "mispredict %": round(100 * self.matrix.misprediction_rate, 2),
            "PVN %": round(100 * self.matrix.pvn, 1),
            "Spec %": round(100 * self.matrix.spec, 1),
        }


class MetricTimeline:
    """Accumulates confidence metrics into fixed-size branch windows."""

    def __init__(self, window_size: int = 10_000):
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        self.window_size = window_size
        self._windows: List[ConfidenceMatrix] = []
        self._count = 0

    def record(self, low_confidence: bool, mispredicted: bool) -> None:
        """Account one resolved branch into the current window."""
        index = self._count // self.window_size
        while len(self._windows) <= index:
            self._windows.append(ConfidenceMatrix())
        self._windows[index].record(low_confidence, mispredicted)
        self._count += 1

    @property
    def branches(self) -> int:
        """Branches recorded so far."""
        return self._count

    def points(self, complete_only: bool = True) -> List[WindowPoint]:
        """Per-window metric points, oldest first.

        ``complete_only`` drops a trailing partial window so trend
        comparisons are not skewed by a short tail.
        """
        points = []
        for i, matrix in enumerate(self._windows):
            if complete_only and matrix.total < self.window_size:
                continue
            points.append(
                WindowPoint(
                    window_index=i,
                    start_branch=i * self.window_size,
                    matrix=matrix,
                )
            )
        return points

    def trend(self, metric: str = "pvn", complete_only: bool = True):
        """The metric's value per window, e.g. ``trend("spec")``."""
        valid = ("pvn", "spec", "misprediction_rate", "sens", "pvp")
        if metric not in valid:
            raise ValueError(f"metric must be one of {valid}, got {metric!r}")
        return [
            getattr(p.matrix, metric) for p in self.points(complete_only)
        ]

    def improvement(self, metric: str = "pvn") -> Optional[float]:
        """Last-window minus first-window value (None if < 2 windows)."""
        values = self.trend(metric)
        if len(values) < 2:
            return None
        return values[-1] - values[0]

"""Terminal plotting for densities and trade-off frontiers.

Matplotlib is not available offline, so the figures are rendered as
text: a two-column histogram for the Figure 4-7 densities and a scatter
grid for U-vs-P frontiers.  Examples and the experiment CLI share these
renderers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.density import OutputDensity

__all__ = ["density_plot", "frontier_plot"]


def density_plot(
    density: OutputDensity,
    bins: int = 24,
    width: int = 28,
    value_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Side-by-side CB/MB histogram bars, one row per output bin.

    CB bars are drawn with ``#`` and MB bars with ``*``; each column is
    normalised to its own peak (the paper's Figures 4 and 6 use separate
    y-scales for the same reason).
    """
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    edges, cb, mb = density.histogram(bins=bins, value_range=value_range)
    cb_max = max(int(cb.max()), 1)
    mb_max = max(int(mb.max()), 1)
    lines = [
        f"{'output':>8}  {'CB (peak ' + str(cb_max) + ')':<{width}}| "
        f"MB (peak {mb_max})"
    ]
    for i in range(len(cb)):
        centre = (edges[i] + edges[i + 1]) / 2.0
        cb_bar = "#" * round(width * int(cb[i]) / cb_max)
        mb_bar = "*" * round(width * int(mb[i]) / mb_max)
        lines.append(f"{centre:8.0f}  {cb_bar:<{width}}| {mb_bar}")
    return "\n".join(lines)


def frontier_plot(
    points: Sequence[Tuple[float, float, str]],
    width: int = 56,
    height: int = 16,
) -> str:
    """Scatter U (y-axis) against P (x-axis) with one-char labels.

    ``points`` are (p_pct, u_pct, label); the first character of each
    label marks the point.  Collisions keep the earliest point.
    """
    if not points:
        return "(no points)"
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4")
    ps = [p for p, _, _ in points]
    us = [u for _, u, _ in points]
    p_lo, p_hi = min(ps + [0.0]), max(ps)
    u_lo, u_hi = min(us + [0.0]), max(us)
    p_span = (p_hi - p_lo) or 1.0
    u_span = (u_hi - u_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for p, u, label in points:
        col = round((p - p_lo) / p_span * (width - 1))
        row = (height - 1) - round((u - u_lo) / u_span * (height - 1))
        if grid[row][col] == " ":
            grid[row][col] = (label or "?")[0]
    lines = [f"U% (top={u_hi:.1f})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" P% from {p_lo:.1f} to {p_hi:.1f}")
    legend = ", ".join(f"{(label or '?')[0]}={label}" for _, _, label in points[:8])
    lines.append(f" legend: {legend}")
    return "\n".join(lines)

"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only
enables legacy ``pip install -e .`` in offline environments where PEP
517 editable builds are unavailable.
"""

from setuptools import setup

setup()

"""Unit tests for the SMT fetch-sharing model (extension)."""

import pytest

from repro.core.frontend import FrontEndEvent
from repro.core.reversal import BranchAction, PolicyDecision
from repro.core.types import ConfidenceSignal
from repro.pipeline.config import PipelineConfig
from repro.pipeline.smt import SmtSimulator


def event(pc=0x40, mispredicted=False, gated=False, uops_before=7):
    signal = (
        ConfidenceSignal.weak_low(1.0) if gated else ConfidenceSignal.high(0.0)
    )
    action = BranchAction.GATE if gated else BranchAction.NORMAL
    return FrontEndEvent(
        pc=pc,
        taken=not mispredicted,
        prediction=True,
        final_prediction=True,
        signal=signal,
        decision=PolicyDecision(action, True),
        uops_before=uops_before,
    )


def stream(n, mispredict_every=0, gate_mispredicts=False):
    events = []
    for i in range(n):
        mis = mispredict_every and (i % mispredict_every == mispredict_every - 1)
        events.append(
            event(mispredicted=bool(mis), gated=bool(mis and gate_mispredicts))
        )
    return events


def config(**kw):
    defaults = dict(
        fetch_width=4, depth=20, rob_size=128, base_uop_cycles=1.0,
        resolve_jitter=0, estimator_latency=1, gating_threshold=1,
    )
    defaults.update(kw)
    return PipelineConfig(**defaults)


class TestBasicOperation:
    def test_clean_pair_shares_bandwidth(self):
        sim = SmtSimulator(config(), gate_yields=False)
        stats = sim.simulate(stream(300), stream(300))
        assert stats.combined_wrong_path_uops == 0
        # Both threads progress (ICOUNT alternates).
        assert stats.threads[0].correct_uops > 0
        assert stats.threads[1].correct_uops > 0
        assert stats.throughput > 1.0

    def test_stops_at_first_completion(self):
        sim = SmtSimulator(config(), gate_yields=False)
        stats = sim.simulate(stream(50), stream(5000))
        assert stats.threads[0].branches <= 50
        # The long thread is still mid-stream at measurement end.
        assert stats.threads[1].branches < 5000

    def test_deterministic(self):
        a = SmtSimulator(config(), gate_yields=True).simulate(
            stream(200, 10, True), stream(200)
        )
        b = SmtSimulator(config(), gate_yields=True).simulate(
            stream(200, 10, True), stream(200)
        )
        assert a.total_cycles == b.total_cycles
        assert a.combined_correct_uops == b.combined_correct_uops

    def test_max_cycles_cap(self):
        sim = SmtSimulator(config(), gate_yields=False)
        stats = sim.simulate(stream(10_000), stream(10_000), max_cycles=100)
        assert stats.total_cycles == 100


class TestSpeculationControl:
    def test_wrong_path_burns_slots_in_baseline(self):
        sim = SmtSimulator(config(), gate_yields=False)
        stats = sim.simulate(stream(400, mispredict_every=5), stream(400))
        assert stats.threads[0].wrong_path_uops > 0

    def test_gating_diverts_slots_to_sibling(self):
        dirty = stream(400, mispredict_every=5, gate_mispredicts=True)
        clean = stream(4000)
        base = SmtSimulator(config(), gate_yields=False).simulate(dirty, clean)
        ctrl = SmtSimulator(config(), gate_yields=True).simulate(dirty, clean)
        # Confidence-directed fetch wastes less and helps the sibling.
        assert ctrl.wasted_fraction < base.wasted_fraction
        assert ctrl.threads[1].correct_uops >= base.threads[1].correct_uops

    def test_gated_cycles_counted(self):
        dirty = stream(200, mispredict_every=4, gate_mispredicts=True)
        stats = SmtSimulator(config(), gate_yields=True).simulate(
            dirty, stream(2000)
        )
        assert stats.threads[0].gated_cycles > 0

    def test_no_gating_when_disabled(self):
        dirty = stream(200, mispredict_every=4, gate_mispredicts=True)
        stats = SmtSimulator(config(), gate_yields=False).simulate(
            dirty, stream(2000)
        )
        assert stats.threads[0].gated_cycles == 0


class TestStats:
    def test_throughput_definition(self):
        stats = SmtSimulator(config(), gate_yields=False).simulate(
            stream(100), stream(100)
        )
        assert stats.throughput == pytest.approx(
            stats.combined_correct_uops / stats.total_cycles
        )

    def test_wasted_fraction_bounds(self):
        stats = SmtSimulator(config(), gate_yields=False).simulate(
            stream(300, mispredict_every=6), stream(300, mispredict_every=6)
        )
        assert 0.0 < stats.wasted_fraction < 1.0

"""Tests for the differential-verification subsystem itself.

The verify layers guard the simulator; these tests guard the layers:
every registered kind really has a reference-oracle differential test,
the golden gate catches drift and names it, and the mutation harness
proves the whole apparatus can fail.
"""

import pytest

from repro.engine.engine import Engine
from repro.engine.specs import (
    GATING_POLICY,
    NO_POLICY,
    EstimatorSpec,
    PolicySpec,
    PredictorSpec,
)
from repro.trace.benchmarks import generate_benchmark_trace
from repro.verify.differential import run_differential
from repro.verify.golden import (
    GoldenEntry,
    compare,
    compute_entries,
    load_baseline,
    write_baseline,
)
from repro.verify.matrix import (
    CASES,
    PROFILES,
    VerifyError,
    VerifyProfile,
    jobs_for_profile,
    specs_for_estimator_kind,
    specs_for_predictor_kind,
)
from repro.verify.metamorphic import run_invariants
from repro.verify.mutation import MUTATIONS, apply_mutation

DIFF_TRACE = generate_benchmark_trace("gzip", n_branches=1_200, seed=11)

TINY = VerifyProfile(
    name="tiny",
    n_branches=2_000,
    warmup=500,
    benchmarks=("gzip",),
    differential_branches=600,
)


@pytest.fixture(scope="module")
def engine():
    return Engine(max_workers=1)


class TestDifferentialOracles:
    """Every registered kind is cross-checked against its oracle."""

    @pytest.mark.parametrize("kind", EstimatorSpec.kinds())
    def test_estimator_kind_matches_reference(self, kind):
        label, estimator = specs_for_estimator_kind(kind)[0]
        report = run_differential(
            DIFF_TRACE,
            PredictorSpec.of("baseline_hybrid"),
            estimator,
            GATING_POLICY,
            label=f"{kind}-via-{label}",
        )
        assert report.ok, report.format()
        assert report.branches == len(DIFF_TRACE)

    @pytest.mark.parametrize("kind", PredictorSpec.kinds())
    def test_predictor_kind_matches_reference(self, kind):
        label, predictor = specs_for_predictor_kind(kind)[0]
        report = run_differential(
            DIFF_TRACE,
            predictor,
            EstimatorSpec.of("always_high"),
            NO_POLICY,
            label=f"{kind}-via-{label}",
        )
        assert report.ok, report.format()

    @pytest.mark.parametrize("kind", PolicySpec.kinds())
    def test_policy_kind_matches_reference(self, kind):
        # three_region needs a strong-capable signal to exercise reversal.
        estimator = EstimatorSpec.of(
            "perceptron", threshold=-75, strong_threshold=0
        )
        report = run_differential(
            DIFF_TRACE,
            PredictorSpec.of("baseline_hybrid"),
            estimator,
            PolicySpec.of(kind),
            label=f"policy-{kind}",
        )
        assert report.ok, report.format()

    def test_every_matrix_case_matches_reference(self):
        for case in CASES:
            report = run_differential(
                DIFF_TRACE.slice(0, 600),
                case.predictor,
                case.estimator,
                case.policy,
                label=case.label,
            )
            assert report.ok, report.format()

    def test_divergence_is_detected_and_located(self):
        """Under a mutation the differential must fail with a location."""
        with apply_mutation("perceptron-update"):
            report = run_differential(
                DIFF_TRACE.slice(0, 600),
                PredictorSpec.of("baseline_hybrid"),
                EstimatorSpec.of("perceptron", threshold=0),
                GATING_POLICY,
                label="mutated",
            )
        assert not report.ok
        assert report.divergence.field.startswith("signal")
        assert "mutated" in report.format()
        # The mutation context manager must have restored the original.
        assert run_differential(
            DIFF_TRACE.slice(0, 600),
            PredictorSpec.of("baseline_hybrid"),
            EstimatorSpec.of("perceptron", threshold=0),
            GATING_POLICY,
        ).ok

    def test_unknown_kind_raises(self):
        from repro.verify.oracles import reference_estimator

        class FakeSpec:
            kind = "no_such_kind"

            def param_dict(self):
                return {}

        with pytest.raises(KeyError):
            reference_estimator(FakeSpec())


class TestGoldenGate:
    def test_roundtrip_clean(self, engine, tmp_path):
        entries = compute_entries(TINY, engine)
        path = str(tmp_path / "tiny.json")
        write_baseline(TINY, entries, "test baseline", path=path)
        baseline = load_baseline("tiny", path=path)
        report = compare(baseline, compute_entries(TINY, engine), "tiny")
        assert report.ok, report.format()
        assert report.checked == len(CASES) * len(TINY.benchmarks)

    def test_drift_names_case_and_metric(self, engine, tmp_path):
        entries = compute_entries(TINY, engine)
        path = str(tmp_path / "tiny.json")
        write_baseline(TINY, entries, "test baseline", path=path)
        baseline = load_baseline("tiny", path=path)
        # Perturb one recorded metric: the gate must name it exactly.
        label = entries[0].label
        baseline["entries"][label]["metrics"]["mispredictions"] += 5
        baseline["entries"][label]["digest"] = "0" * 64
        report = compare(baseline, entries, "tiny")
        assert not report.ok
        assert any(
            lbl == label and metric == "mispredictions"
            for lbl, metric, _, _ in report.drifts
        )
        formatted = report.format()
        assert label in formatted
        assert "mispredictions" in formatted
        assert "drifted" in formatted

    def test_fingerprint_change_is_not_metric_drift(self, engine, tmp_path):
        entries = compute_entries(TINY, engine)
        path = str(tmp_path / "tiny.json")
        write_baseline(TINY, entries, "test baseline", path=path)
        baseline = load_baseline("tiny", path=path)
        label = entries[0].label
        baseline["entries"][label]["fingerprint"] = "f" * 64
        report = compare(baseline, entries, "tiny")
        assert not report.ok
        assert report.fingerprint_mismatches == [label]
        assert report.drifts == []
        assert "different experiment" in report.format()

    def test_matrix_drift_reported(self, engine, tmp_path):
        entries = compute_entries(TINY, engine)
        path = str(tmp_path / "tiny.json")
        write_baseline(TINY, entries, "test baseline", path=path)
        baseline = load_baseline("tiny", path=path)
        extra = GoldenEntry("new-case/gzip", "ab" * 32, "cd" * 32, {})
        report = compare(baseline, entries[1:] + [extra], "tiny")
        assert report.missing == [entries[0].label]
        assert report.unexpected == ["new-case/gzip"]

    def test_refresh_requires_reason(self, engine, tmp_path):
        entries = compute_entries(TINY, engine)
        with pytest.raises(VerifyError):
            write_baseline(TINY, entries, "", path=str(tmp_path / "t.json"))
        with pytest.raises(VerifyError):
            write_baseline(TINY, entries, "  ", path=str(tmp_path / "t.json"))

    def test_refresh_is_deterministic(self, engine, tmp_path):
        entries = compute_entries(TINY, engine)
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_baseline(TINY, entries, "same reason", path=a)
        write_baseline(TINY, compute_entries(TINY, engine), "same reason", path=b)
        with open(a) as fa, open(b) as fb:
            assert fa.read() == fb.read()

    def test_missing_baseline_explains_refresh(self, tmp_path):
        with pytest.raises(VerifyError, match="--refresh"):
            load_baseline("tiny", path=str(tmp_path / "absent.json"))

    def test_checked_in_baselines_match_matrix(self):
        """The repo's golden files cover exactly the current matrix."""
        for name in PROFILES:
            baseline = load_baseline(name)
            expected = {label for label, _ in jobs_for_profile(PROFILES[name])}
            assert set(baseline["entries"]) == expected
            fingerprints = {
                label: job.fingerprint
                for label, job in jobs_for_profile(PROFILES[name])
            }
            for label, entry in baseline["entries"].items():
                assert entry["fingerprint"] == fingerprints[label], (
                    f"{name}:{label} baseline fingerprint is stale -- "
                    f"refresh with a reason"
                )


class TestMutationHarness:
    def test_mutations_are_reversible(self):
        from repro.common.perceptron import PerceptronArray

        original = PerceptronArray.train
        with apply_mutation("perceptron-update"):
            assert PerceptronArray.train is not original
        assert PerceptronArray.train is original

    def test_unknown_mutation(self):
        with pytest.raises(KeyError):
            apply_mutation("no-such-mutation")

    def test_mutation_fails_golden_gate(self, engine, tmp_path):
        path = str(tmp_path / "tiny.json")
        write_baseline(TINY, compute_entries(TINY, engine), "clean", path=path)
        baseline = load_baseline("tiny", path=path)
        with apply_mutation("perceptron-update"):
            mutated = compute_entries(TINY, Engine(max_workers=1))
        report = compare(baseline, mutated, "tiny")
        assert not report.ok
        drifted_labels = {label for label, _, _, _ in report.drifts}
        assert any("perceptron" in label for label in drifted_labels)

    def test_every_registered_mutation_is_caught(self, engine, tmp_path):
        path = str(tmp_path / "tiny.json")
        write_baseline(TINY, compute_entries(TINY, engine), "clean", path=path)
        baseline = load_baseline("tiny", path=path)
        for name in MUTATIONS:
            with apply_mutation(name):
                mutated = compute_entries(TINY, Engine(max_workers=1))
            report = compare(baseline, mutated, "tiny")
            assert not report.ok, f"mutation {name!r} slipped through the gate"


class TestInvariants:
    def test_all_pass_on_clean_tree(self, engine):
        results = run_invariants(engine, TINY)
        failures = [r.format() for r in results if not r.ok]
        assert not failures, "\n".join(failures)
        assert len(results) >= 5


class TestCli:
    def test_refresh_without_reason_rejected(self):
        from repro.verify.cli import main

        with pytest.raises(SystemExit):
            main(["--quick", "--refresh"])

    def test_run_verification_reports_failures(self, tmp_path, capsys):
        from repro.verify.cli import run_verification

        # Golden-only mutated run against the checked-in quick baseline
        # must exit nonzero and name a perceptron case in its output.
        code = run_verification(
            "quick",
            differential=False,
            invariants=False,
            golden=True,
            mutate="perceptron-update",
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "drifted" in out
        assert "perceptron" in out

    def test_runner_verify_flag_aborts_on_failure(self, monkeypatch, capsys):
        import repro.experiments.runner as runner
        import repro.verify.cli as cli

        calls = {}

        def fake_verification(profile, jobs=1):
            calls["profile"] = profile
            return 1

        monkeypatch.setattr(cli, "run_verification", fake_verification)
        assert runner.main(["table2", "--quick", "--verify"]) == 1
        assert calls["profile"] == "quick"
        assert "aborting" in capsys.readouterr().out

    def test_markdown_report(self, tmp_path, capsys):
        from repro.verify.cli import run_verification

        md = str(tmp_path / "verify.md")
        code = run_verification(
            "quick",
            differential=False,
            invariants=True,
            golden=False,
            markdown=md,
        )
        assert code == 0
        with open(md) as fh:
            text = fh.read()
        assert "| layer |" in text
        assert "invariants" in text

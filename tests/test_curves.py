"""Unit tests for confidence-curve analysis."""

import pytest

from repro.analysis.curves import (
    ConfidenceCurve,
    CurvePoint,
    area_under_curve,
    dominates,
)


def curve(points, name="c"):
    return ConfidenceCurve(
        [CurvePoint(spec=s, pvn=p, threshold=t) for s, p, t in points],
        name=name,
    )


class TestCurvePoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            CurvePoint(spec=1.5, pvn=0.5, threshold=0)
        with pytest.raises(ValueError):
            CurvePoint(spec=0.5, pvn=-0.1, threshold=0)


class TestConfidenceCurve:
    def test_sorted_by_coverage(self):
        c = curve([(0.6, 0.4, -50), (0.2, 0.8, 25), (0.4, 0.6, 0)])
        assert [p.spec for p in c.points] == [0.2, 0.4, 0.6]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceCurve([])

    def test_interpolation(self):
        c = curve([(0.2, 0.8, 25), (0.6, 0.4, -50)])
        assert c.pvn_at(0.2) == pytest.approx(0.8)
        assert c.pvn_at(0.4) == pytest.approx(0.6)
        assert c.pvn_at(0.6) == pytest.approx(0.4)

    def test_outside_range_is_none(self):
        c = curve([(0.2, 0.8, 25), (0.6, 0.4, -50)])
        assert c.pvn_at(0.1) is None
        assert c.pvn_at(0.7) is None

    def test_best_threshold_for_coverage(self):
        c = curve([(0.2, 0.8, 25), (0.4, 0.6, 0), (0.6, 0.4, -50)])
        assert c.best_threshold_for_coverage(0.3) == 0
        assert c.best_threshold_for_coverage(0.6) == -50
        assert c.best_threshold_for_coverage(0.9) is None

    def test_from_threshold_points(self, simple_trace):
        from repro.analysis.sweep import sweep_estimator_thresholds
        from repro.core.jrs import JRSEstimator
        from repro.predictors.hybrid import make_baseline_hybrid

        points = sweep_estimator_thresholds(
            simple_trace,
            make_baseline_hybrid,
            lambda t: JRSEstimator(threshold=int(t)),
            thresholds=(3, 7, 11),
            warmup=1000,
        )
        c = ConfidenceCurve.from_threshold_points(points, name="jrs")
        assert len(c) == 3
        lo, hi = c.coverage_range
        assert 0 <= lo <= hi <= 1


class TestDominates:
    def test_clear_dominance(self):
        better = curve([(0.2, 0.9, 0), (0.6, 0.7, -50)])
        worse = curve([(0.2, 0.5, 3), (0.6, 0.3, 15)])
        assert dominates(better, worse)
        assert not dominates(worse, better)

    def test_crossing_curves_no_dominance(self):
        a = curve([(0.2, 0.9, 0), (0.6, 0.2, -50)])
        b = curve([(0.2, 0.5, 3), (0.6, 0.5, 15)])
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_disjoint_ranges(self):
        a = curve([(0.1, 0.9, 0), (0.2, 0.8, 1)])
        b = curve([(0.7, 0.3, 2), (0.9, 0.2, 3)])
        assert not dominates(a, b)

    def test_identical_not_dominant(self):
        a = curve([(0.2, 0.5, 0), (0.6, 0.4, 1)])
        b = curve([(0.2, 0.5, 0), (0.6, 0.4, 1)])
        assert not dominates(a, b)


class TestAreaUnderCurve:
    def test_flat_curve(self):
        c = curve([(0.2, 0.5, 0), (0.8, 0.5, 1)])
        assert area_under_curve(c) == pytest.approx(0.5)

    def test_linear_curve(self):
        c = curve([(0.0, 1.0, 0), (1.0, 0.0, 1)])
        assert area_under_curve(c) == pytest.approx(0.5)

    def test_single_point(self):
        c = curve([(0.4, 0.7, 0)])
        assert area_under_curve(c) == pytest.approx(0.7)

    def test_perceptron_beats_jrs_on_auc(self, gzip_trace):
        """The Table 3 relationship as a single scalar."""
        from repro.analysis.sweep import sweep_estimator_thresholds
        from repro.core.jrs import JRSEstimator
        from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
        from repro.predictors.hybrid import make_baseline_hybrid

        jrs = ConfidenceCurve.from_threshold_points(
            sweep_estimator_thresholds(
                gzip_trace,
                make_baseline_hybrid,
                lambda t: JRSEstimator(threshold=int(t)),
                thresholds=(3, 7, 15),
                warmup=4000,
            ),
            name="jrs",
        )
        perc = ConfidenceCurve.from_threshold_points(
            sweep_estimator_thresholds(
                gzip_trace,
                make_baseline_hybrid,
                lambda t: PerceptronConfidenceEstimator(threshold=t),
                thresholds=(25, 0, -50),
                warmup=4000,
            ),
            name="perceptron",
        )
        assert area_under_curve(perc) > area_under_curve(jrs)

"""Unit tests for the workload calibration solver."""

import pytest

from repro.trace.benchmarks import benchmark_profile
from repro.trace.calibration import (
    FRAC_CORRELATED,
    FRAC_UNPREDICTABLE,
    UNPRED_CONTRIBUTIONS,
    UNPREDICTABLE_CLASSES,
    ClassMeasurement,
    calibrate_profile,
    classify_pc,
    measure_profile,
    solve_weights,
)
from repro.trace.benchmarks import _CLASS_PC_BASE


class TestClassifyPc:
    def test_maps_regions(self):
        for cls, base in _CLASS_PC_BASE.items():
            assert classify_pc(base) == cls
            assert classify_pc(base + 52 * 3) == cls

    def test_below_all_regions(self):
        assert classify_pc(0) is None


class TestMeasureProfile:
    def test_measures_gzip(self):
        profile = benchmark_profile("gzip")
        m = measure_profile(profile, n_branches=12_000, warmup=4_000)
        assert 0.0 < m.overall_rate < 0.3
        assert abs(sum(m.shares.values()) - 1.0) < 1e-9
        assert "biased" in m.rates
        # Random-class branches must mispredict far more than biased.
        if "random" in m.rates:
            assert m.rates["random"] > m.rates["biased"]

    def test_rate_default(self):
        m = ClassMeasurement(shares={}, rates={}, overall_rate=0.0)
        assert m.rate("hidden", default=0.4) == 0.4


class TestSolveWeights:
    def measurement(self):
        return ClassMeasurement(
            shares={},
            rates={
                "biased": 0.003,
                "correlated": 0.06,
                "pattern": 0.25,
                "loop": 0.10,
                "phased": 0.08,
                "hidden": 0.35,
                "random": 0.50,
            },
            overall_rate=0.05,
        )

    def test_weights_sum_to_one(self):
        weights = solve_weights(
            benchmark_profile("gzip"), self.measurement(), target_rate=0.04
        )
        assert sum(weights.values()) == pytest.approx(1.0, abs=1e-3)
        assert all(w >= 0 for w in weights.values())

    def test_composition_targets(self):
        m = self.measurement()
        target = 0.04
        weights = solve_weights(benchmark_profile("gzip"), m, target)
        unpred_contrib = sum(
            weights[cls] * m.rates[cls] for cls in UNPREDICTABLE_CLASSES
        )
        assert unpred_contrib == pytest.approx(
            FRAC_UNPREDICTABLE * target, rel=0.15
        )
        # Within the unpredictable budget, hidden dominates as configured.
        hidden_share = weights["hidden"] * m.rates["hidden"] / unpred_contrib
        assert hidden_share == pytest.approx(
            UNPRED_CONTRIBUTIONS["hidden"], rel=0.1
        )

    def test_lower_target_lowers_hard_classes(self):
        m = self.measurement()
        aggressive = solve_weights(benchmark_profile("gzip"), m, 0.08)
        gentle = solve_weights(benchmark_profile("gzip"), m, 0.01)
        for cls in UNPREDICTABLE_CLASSES:
            assert gentle[cls] <= aggressive[cls]
        assert gentle["biased"] > aggressive["biased"]

    def test_target_validation(self):
        with pytest.raises(ValueError):
            solve_weights(benchmark_profile("gzip"), self.measurement(), 0.0)


class TestCalibrateProfile:
    def test_converges_on_gzip(self):
        profile = benchmark_profile("gzip")
        result = calibrate_profile(
            profile, n_branches=15_000, warmup=5_000, max_iterations=3
        )
        assert result.converged
        assert 0.5 <= result.ratio <= 2.0
        assert result.iterations >= 1
        # The input profile is untouched.
        assert profile.class_weights == benchmark_profile("gzip").class_weights

    def test_result_profile_valid(self):
        result = calibrate_profile(
            benchmark_profile("bzip"), n_branches=12_000, warmup=4_000,
            max_iterations=2,
        )
        assert sum(result.profile.class_weights.values()) == pytest.approx(
            1.0, abs=2e-3
        )

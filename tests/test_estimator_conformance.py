"""Conformance suite: every estimator obeys the front-end protocol.

Parametrised over the whole estimator zoo, these tests pin the
contracts :class:`repro.core.frontend.FrontEnd` relies on: estimate is
a pure read, signals are internally consistent, training never raises
on any (prediction, outcome) combination, and a full trace replay
yields coherent metrics.

The zoo is *auto-discovered*: every kind registered in
:mod:`repro.engine.specs` is pulled in via the verification matrix
(:mod:`repro.verify.matrix`), so registering a new estimator or
predictor kind without adding verification coverage fails this suite
-- there is no hand-maintained list to forget to update.  Estimators
that exist outside the registry (research one-offs) are appended
explicitly.
"""

import pytest

from repro.core.agreement import ComponentAgreementEstimator
from repro.core.estimator import AlwaysHighEstimator
from repro.core.frontend import FrontEnd
from repro.core.pattern import PatternEstimator
from repro.core.smith import SmithEstimator
from repro.engine.specs import EstimatorSpec, PolicySpec, PredictorSpec
from repro.predictors.hybrid import make_baseline_hybrid
from repro.predictors.local import LocalPredictor
from repro.verify.matrix import (
    CASES,
    VerifyError,
    assert_full_coverage,
    missing_estimator_kinds,
    missing_policy_kinds,
    missing_predictor_kinds,
    specs_for_estimator_kind,
    specs_for_predictor_kind,
)

ESTIMATOR_KINDS = EstimatorSpec.kinds()
PREDICTOR_KINDS = PredictorSpec.kinds()


def estimator_factories():
    """(label, factory) for every estimator; factories build fresh
    instances plus the predictor the front-end should use (None = any).

    Registered kinds come from the verification matrix; the rest of the
    zoo (not spec-registered) is listed explicitly below.
    """
    cases = []
    for kind in ESTIMATOR_KINDS:
        label, spec = specs_for_estimator_kind(kind)[0]
        cases.append(
            (f"kind:{kind}", lambda spec=spec: (spec.build(), None))
        )

    def smith():
        hybrid = make_baseline_hybrid()
        return SmithEstimator(hybrid), hybrid

    def agreement():
        hybrid = make_baseline_hybrid()
        return ComponentAgreementEstimator(hybrid), hybrid

    cases += [
        ("pattern", lambda: (PatternEstimator(LocalPredictor()), None)),
        ("smith", smith),
        ("component-agreement", agreement),
    ]
    return cases


IDS = [label for label, _ in estimator_factories()]
FACTORIES = [factory for _, factory in estimator_factories()]


@pytest.fixture(params=FACTORIES, ids=IDS)
def estimator_and_predictor(request):
    estimator, predictor = request.param()
    return estimator, predictor or make_baseline_hybrid()


class TestProtocolConformance:
    def test_estimate_is_consistent_signal(self, estimator_and_predictor):
        estimator, _ = estimator_and_predictor
        signal = estimator.estimate(0x400000, True)
        assert signal.low_confidence == signal.level.is_low

    def test_estimate_is_repeatable(self, estimator_and_predictor):
        """Two estimates with no intervening training must agree."""
        estimator, _ = estimator_and_predictor
        first = estimator.estimate(0x400000, True)
        second = estimator.estimate(0x400000, True)
        assert first.low_confidence == second.low_confidence
        assert first.raw == second.raw

    def test_train_accepts_all_outcomes(self, estimator_and_predictor):
        estimator, _ = estimator_and_predictor
        for prediction in (True, False):
            for correct in (True, False):
                signal = estimator.estimate(0x400000, prediction)
                estimator.train(0x400000, prediction, correct, signal)
                estimator.shift_history(prediction if correct else not prediction)

    def test_storage_bits_nonnegative(self, estimator_and_predictor):
        estimator, _ = estimator_and_predictor
        assert estimator.storage_bits >= 0
        assert estimator.storage_kib == estimator.storage_bits / 8 / 1024

    def test_full_replay_metrics_coherent(
        self, estimator_and_predictor, simple_trace
    ):
        estimator, predictor = estimator_and_predictor
        frontend = FrontEnd(predictor, estimator)
        result = frontend.replay(simple_trace, warmup=500)
        matrix = result.metrics.overall
        assert matrix.total == result.branches
        assert 0.0 <= matrix.pvn <= 1.0
        assert 0.0 <= matrix.spec <= 1.0
        assert matrix.mispredicted == result.mispredictions

    def test_reset_restores_cold_behaviour(
        self, estimator_and_predictor, simple_trace
    ):
        estimator, predictor = estimator_and_predictor
        cold = estimator.estimate(0x400000, True)
        FrontEnd(predictor, estimator).replay(simple_trace.slice(0, 800))
        estimator.reset()
        predictor.reset()
        warm_reset = estimator.estimate(0x400000, True)
        assert warm_reset.low_confidence == cold.low_confidence
        assert warm_reset.raw == cold.raw


@pytest.mark.parametrize("kind", ESTIMATOR_KINDS)
class TestEstimatorStateCanonical:
    """Registered estimators expose full adaptive state for digests."""

    def test_digest_pure_under_estimate(self, kind):
        _, spec = specs_for_estimator_kind(kind)[0]
        estimator = spec.build()
        before = estimator.state_digest()
        estimator.estimate(0x400000, True)
        estimator.estimate(0x400abc, False)
        assert estimator.state_digest() == before

    def test_digest_tracks_training(self, kind, simple_trace):
        _, spec = specs_for_estimator_kind(kind)[0]
        estimator = spec.build()
        cold = estimator.state_digest()
        FrontEnd(make_baseline_hybrid(), estimator).replay(
            simple_trace.slice(0, 400)
        )
        if kind == "always_high":  # stateless by construction
            assert estimator.state_digest() == cold
        else:
            assert estimator.state_digest() != cold

    def test_two_fresh_instances_agree(self, kind):
        _, spec = specs_for_estimator_kind(kind)[0]
        assert spec.build().state_digest() == spec.build().state_digest()


@pytest.mark.parametrize("kind", PREDICTOR_KINDS)
class TestPredictorConformance:
    """Registered predictors: protocol plus canonical state."""

    def test_replay_and_state_digest(self, kind, simple_trace):
        _, spec = specs_for_predictor_kind(kind)[0]
        predictor = spec.build()
        cold = predictor.state_digest()
        for record in simple_trace.slice(0, 400):
            prediction = predictor.predict(record.pc)
            predictor.update(record.pc, record.taken, prediction)
        assert predictor.state_digest() != cold

    def test_predict_is_pure(self, kind):
        _, spec = specs_for_predictor_kind(kind)[0]
        predictor = spec.build()
        before = predictor.state_digest()
        predictor.predict(0x400000)
        predictor.predict(0x400f00)
        assert predictor.state_digest() == before

    def test_two_fresh_instances_agree(self, kind):
        _, spec = specs_for_predictor_kind(kind)[0]
        assert spec.build().state_digest() == spec.build().state_digest()


class TestRegistryCoverage:
    """Registering a kind without verification coverage fails here."""

    def test_every_estimator_kind_covered(self):
        assert missing_estimator_kinds() == []

    def test_every_predictor_kind_covered(self):
        assert missing_predictor_kinds() == []

    def test_every_policy_kind_covered(self):
        assert missing_policy_kinds() == []

    def test_full_coverage_assertion_passes(self):
        assert_full_coverage()

    def test_matrix_labels_unique(self):
        labels = [case.label for case in CASES]
        assert len(labels) == len(set(labels))

    def test_unregistered_estimator_kind_fails_suite(self):
        """A freshly registered kind must be reported as uncovered."""

        @EstimatorSpec.register("conformance_dummy")
        def _build_dummy():  # pragma: no cover - never built
            return AlwaysHighEstimator()

        try:
            assert "conformance_dummy" in missing_estimator_kinds()
            with pytest.raises(VerifyError):
                assert_full_coverage()
            with pytest.raises(VerifyError):
                specs_for_estimator_kind("conformance_dummy")
        finally:
            del EstimatorSpec._registry["conformance_dummy"]

    def test_unregistered_policy_kind_fails_suite(self):
        @PolicySpec.register("conformance_dummy_policy")
        def _build_dummy_policy():  # pragma: no cover - never built
            raise AssertionError

        try:
            assert "conformance_dummy_policy" in missing_policy_kinds()
            with pytest.raises(VerifyError):
                assert_full_coverage()
        finally:
            del PolicySpec._registry["conformance_dummy_policy"]

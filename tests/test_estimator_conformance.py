"""Conformance suite: every estimator obeys the front-end protocol.

Parametrised over the whole estimator zoo, these tests pin the
contracts :class:`repro.core.frontend.FrontEnd` relies on: estimate is
a pure read, signals are internally consistent, training never raises
on any (prediction, outcome) combination, and a full trace replay
yields coherent metrics.
"""

import pytest

from repro.core.agreement import ComponentAgreementEstimator
from repro.core.combined_estimator import AgreementEstimator, CascadeEstimator
from repro.core.estimator import AlwaysHighEstimator
from repro.core.frontend import FrontEnd
from repro.core.jrs import JRSEstimator
from repro.core.path_perceptron import PathPerceptronConfidenceEstimator
from repro.core.pattern import PatternEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.smith import SmithEstimator
from repro.predictors.hybrid import make_baseline_hybrid
from repro.predictors.local import LocalPredictor


def estimator_factories():
    """(label, factory) for every estimator; factories build fresh
    instances plus the predictor the front-end should use (None = any)."""

    def plain(factory):
        return lambda: (factory(), None)

    def smith():
        hybrid = make_baseline_hybrid()
        return SmithEstimator(hybrid), hybrid

    def agreement():
        hybrid = make_baseline_hybrid()
        return ComponentAgreementEstimator(hybrid), hybrid

    return [
        ("always-high", plain(AlwaysHighEstimator)),
        ("jrs", plain(lambda: JRSEstimator(threshold=7, enhanced=False))),
        ("enhanced-jrs", plain(lambda: JRSEstimator(threshold=7))),
        ("perceptron-cic", plain(lambda: PerceptronConfidenceEstimator(threshold=0))),
        ("perceptron-tnt",
         plain(lambda: PerceptronConfidenceEstimator(threshold=30, mode="tnt"))),
        ("path-perceptron", plain(PathPerceptronConfidenceEstimator)),
        ("pattern", plain(lambda: PatternEstimator(LocalPredictor()))),
        ("smith", smith),
        ("component-agreement", agreement),
        ("fusion-intersection",
         plain(lambda: AgreementEstimator(
             PerceptronConfidenceEstimator(threshold=0),
             JRSEstimator(threshold=7),
             mode="intersection"))),
        ("cascade",
         plain(lambda: CascadeEstimator(
             PerceptronConfidenceEstimator(threshold=0),
             JRSEstimator(threshold=7)))),
    ]


IDS = [label for label, _ in estimator_factories()]
FACTORIES = [factory for _, factory in estimator_factories()]


@pytest.fixture(params=FACTORIES, ids=IDS)
def estimator_and_predictor(request):
    estimator, predictor = request.param()
    return estimator, predictor or make_baseline_hybrid()


class TestProtocolConformance:
    def test_estimate_is_consistent_signal(self, estimator_and_predictor):
        estimator, _ = estimator_and_predictor
        signal = estimator.estimate(0x400000, True)
        assert signal.low_confidence == signal.level.is_low

    def test_estimate_is_repeatable(self, estimator_and_predictor):
        """Two estimates with no intervening training must agree."""
        estimator, _ = estimator_and_predictor
        first = estimator.estimate(0x400000, True)
        second = estimator.estimate(0x400000, True)
        assert first.low_confidence == second.low_confidence
        assert first.raw == second.raw

    def test_train_accepts_all_outcomes(self, estimator_and_predictor):
        estimator, _ = estimator_and_predictor
        for prediction in (True, False):
            for correct in (True, False):
                signal = estimator.estimate(0x400000, prediction)
                estimator.train(0x400000, prediction, correct, signal)
                estimator.shift_history(prediction if correct else not prediction)

    def test_storage_bits_nonnegative(self, estimator_and_predictor):
        estimator, _ = estimator_and_predictor
        assert estimator.storage_bits >= 0
        assert estimator.storage_kib == estimator.storage_bits / 8 / 1024

    def test_full_replay_metrics_coherent(
        self, estimator_and_predictor, simple_trace
    ):
        estimator, predictor = estimator_and_predictor
        frontend = FrontEnd(predictor, estimator)
        result = frontend.run(simple_trace, warmup=500)
        matrix = result.metrics.overall
        assert matrix.total == result.branches
        assert 0.0 <= matrix.pvn <= 1.0
        assert 0.0 <= matrix.spec <= 1.0
        assert matrix.mispredicted == result.mispredictions

    def test_reset_restores_cold_behaviour(
        self, estimator_and_predictor, simple_trace
    ):
        estimator, predictor = estimator_and_predictor
        cold = estimator.estimate(0x400000, True)
        FrontEnd(predictor, estimator).run(simple_trace.slice(0, 800))
        estimator.reset()
        predictor.reset()
        warm_reset = estimator.estimate(0x400000, True)
        assert warm_reset.low_confidence == cold.low_confidence
        assert warm_reset.raw == cold.raw

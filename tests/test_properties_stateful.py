"""Stateful property tests (hypothesis RuleBasedStateMachine).

Where :mod:`tests.test_properties` checks single operations, these
machines drive the hardware-model data structures through *arbitrary
interleaved operation sequences* against naive pure-Python models, so
ordering bugs (saturation applied before the update, a reset that
forgets one field, state_dict round-trips that drop in-flight state)
cannot hide.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.counters import CounterTable, SaturatingCounter
from repro.common.perceptron import PerceptronArray

_PCS = st.integers(min_value=0, max_value=(1 << 32) - 1)


class PerceptronArrayMachine(RuleBasedStateMachine):
    """PerceptronArray vs a dict-of-lists model with explicit clamping."""

    ENTRIES = 8
    HISTORY = 6
    WEIGHT_BITS = 6

    def __init__(self):
        super().__init__()
        self.array = PerceptronArray(
            self.ENTRIES, self.HISTORY, weight_bits=self.WEIGHT_BITS
        )
        self.w_min, self.w_max = self.array.weight_range
        self.model = [[0] * (self.HISTORY + 1) for _ in range(self.ENTRIES)]

    def _row(self, pc):
        return (pc >> 2) % self.ENTRIES

    @rule(
        pc=_PCS,
        inputs=st.lists(
            st.sampled_from([-1, 1]), min_size=HISTORY, max_size=HISTORY
        ),
        step=st.sampled_from([-1, 1]),
    )
    def train(self, pc, inputs, step):
        self.array.train(pc, np.array(inputs, dtype=np.int8), step)
        row = self.model[self._row(pc)]
        row[0] = min(max(row[0] + step, self.w_min), self.w_max)
        for i, x in enumerate(inputs):
            row[i + 1] = min(
                max(row[i + 1] + step * x, self.w_min), self.w_max
            )

    @rule(
        pc=_PCS,
        inputs=st.lists(
            st.sampled_from([-1, 1]), min_size=HISTORY, max_size=HISTORY
        ),
    )
    def output_matches(self, pc, inputs):
        x = np.array(inputs, dtype=np.int8)
        row = self.model[self._row(pc)]
        expected = row[0] + sum(w * v for w, v in zip(row[1:], inputs))
        assert self.array.output(pc, x) == expected

    @rule()
    def roundtrip_state_dict(self):
        state = self.array.state_dict()
        fresh = PerceptronArray(
            self.ENTRIES, self.HISTORY, weight_bits=self.WEIGHT_BITS
        )
        fresh.load_state_dict(state)
        assert np.array_equal(fresh.snapshot(), self.array.snapshot())
        self.array = fresh

    @rule()
    def reset(self):
        self.array.reset()
        self.model = [[0] * (self.HISTORY + 1) for _ in range(self.ENTRIES)]

    @invariant()
    def weights_match_and_stay_clamped(self):
        snapshot = self.array.snapshot()
        assert snapshot.min() >= self.w_min
        assert snapshot.max() <= self.w_max
        assert [list(map(int, row)) for row in snapshot] == self.model


class SaturatingCounterMachine(RuleBasedStateMachine):
    """SaturatingCounter vs clamped-integer arithmetic."""

    BITS = 3

    def __init__(self):
        super().__init__()
        self.counter = SaturatingCounter(bits=self.BITS, initial=2)
        self.model = 2
        self.max = (1 << self.BITS) - 1

    @rule(up=st.booleans())
    def update(self, up):
        self.counter.update(up)
        self.model = min(self.model + 1, self.max) if up else max(
            self.model - 1, 0
        )

    @rule(value=st.integers(min_value=0, max_value=(1 << BITS) - 1))
    def reset(self, value):
        self.counter.reset(value)
        self.model = value

    @invariant()
    def value_and_msb_match(self):
        assert self.counter.value == self.model
        assert self.counter.msb() == bool(self.model >> (self.BITS - 1))
        assert self.counter.is_saturated() == (self.model in (0, self.max))


class CounterTableMachine(RuleBasedStateMachine):
    """CounterTable (both modes) vs a list-of-ints model."""

    ENTRIES = 8
    BITS = 4

    def __init__(self):
        super().__init__()
        self.max = (1 << self.BITS) - 1
        self.tables = {
            "saturating": CounterTable(self.ENTRIES, bits=self.BITS),
            "resetting": CounterTable(
                self.ENTRIES, bits=self.BITS, mode="resetting"
            ),
        }
        self.models = {
            "saturating": [0] * self.ENTRIES,
            "resetting": [0] * self.ENTRIES,
        }

    @rule(index=st.integers(min_value=0, max_value=1 << 16), up=st.booleans())
    def update(self, index, up):
        for mode, table in self.tables.items():
            table.update(index, up)
            model = self.models[mode]
            slot = index % self.ENTRIES
            if up:
                model[slot] = min(model[slot] + 1, self.max)
            elif mode == "saturating":
                model[slot] = max(model[slot] - 1, 0)
            else:
                model[slot] = 0

    @rule(
        index=st.integers(min_value=0, max_value=1 << 16),
        value=st.integers(min_value=0, max_value=(1 << BITS) - 1),
    )
    def write(self, index, value):
        for mode, table in self.tables.items():
            table.write(index, value)
            self.models[mode][index % self.ENTRIES] = value

    @rule()
    def roundtrip_state_dict(self):
        for mode, table in self.tables.items():
            fresh = CounterTable(self.ENTRIES, bits=self.BITS, mode=mode)
            fresh.load_state_dict(table.state_dict())
            assert np.array_equal(fresh.snapshot(), table.snapshot())
            self.tables[mode] = fresh

    @invariant()
    def tables_match_models(self):
        for mode, table in self.tables.items():
            assert list(map(int, table.snapshot())) == self.models[mode]
            for slot in range(self.ENTRIES):
                assert table.read(slot) == self.models[mode][slot]
                assert table.msb(slot) == bool(
                    self.models[mode][slot] >> (self.BITS - 1)
                )


_SETTINGS = settings(max_examples=40, stateful_step_count=30, deadline=None)

TestPerceptronArrayStateful = PerceptronArrayMachine.TestCase
TestPerceptronArrayStateful.settings = _SETTINGS
TestSaturatingCounterStateful = SaturatingCounterMachine.TestCase
TestSaturatingCounterStateful.settings = _SETTINGS
TestCounterTableStateful = CounterTableMachine.TestCase
TestCounterTableStateful.settings = _SETTINGS

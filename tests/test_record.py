"""Unit tests for repro.trace.record."""

import pytest

from repro.trace.record import BranchRecord, Trace


class TestBranchRecord:
    def test_uops_includes_branch(self):
        rec = BranchRecord(pc=0x400000, taken=True, uops_before=7)
        assert rec.uops == 8

    def test_frozen(self):
        rec = BranchRecord(pc=0x400000, taken=True)
        with pytest.raises(AttributeError):
            rec.taken = False

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchRecord(pc=-1, taken=True)
        with pytest.raises(ValueError):
            BranchRecord(pc=0, taken=True, uops_before=-1)


class TestTrace:
    def make(self):
        records = [
            BranchRecord(pc=0x100, taken=True, uops_before=7),
            BranchRecord(pc=0x200, taken=False, uops_before=5),
            BranchRecord(pc=0x100, taken=True, uops_before=9),
        ]
        return Trace(records, name="t", seed=3)

    def test_len_iter_getitem(self):
        trace = self.make()
        assert len(trace) == 3
        assert [r.pc for r in trace] == [0x100, 0x200, 0x100]
        assert trace[1].pc == 0x200

    def test_metadata(self):
        trace = self.make()
        assert trace.name == "t"
        assert trace.seed == 3

    def test_stats(self):
        stats = self.make().stats()
        assert stats.branches == 3
        assert stats.taken == 2
        assert stats.total_uops == 8 + 6 + 10
        assert stats.static_branches == 2
        assert stats.taken_fraction == pytest.approx(2 / 3)
        assert stats.branches_per_kuop == pytest.approx(3000 / 24)

    def test_stats_cached(self):
        trace = self.make()
        assert trace.stats() is trace.stats()

    def test_slice(self):
        sub = self.make().slice(1)
        assert len(sub) == 2
        assert sub[0].pc == 0x200
        assert sub.seed == 3

    def test_empty_trace_stats(self):
        stats = Trace([]).stats()
        assert stats.branches == 0
        assert stats.taken_fraction == 0.0
        assert stats.branches_per_kuop == 0.0

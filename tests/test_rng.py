"""Unit tests for repro.common.rng."""

from repro.common.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(1, "trace", "gcc") != derive_seed(1, "trace", "gzip")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_path_structure_matters(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_63_bit_range(self):
        for i in range(20):
            s = derive_seed(i, "n")
            assert 0 <= s < (1 << 63)


class TestRandomStreams:
    def test_memoised(self):
        streams = RandomStreams(42)
        assert streams.get("a") is streams.get("a")

    def test_independent_names(self):
        streams = RandomStreams(42)
        a = streams.get("a").random(8)
        b = streams.get("b").random(8)
        assert not (a == b).all()

    def test_fresh_restarts_sequence(self):
        streams = RandomStreams(42)
        first = streams.fresh("x").random(4)
        second = streams.fresh("x").random(4)
        assert (first == second).all()

    def test_seed_for_matches_get(self):
        streams = RandomStreams(7)
        assert streams.seed_for("y") == derive_seed(7, "y")

    def test_root_seed_property(self):
        assert RandomStreams(5).root_seed == 5

"""Unit tests for predictor state persistence."""

import pytest

from repro.common.state import StateError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.hybrid import (
    make_baseline_hybrid,
    make_gshare_perceptron_hybrid,
)
from repro.predictors.perceptron_predictor import PerceptronPredictor


def warm(predictor, trace):
    for rec in trace:
        predictor.update(rec.pc, rec.taken, predictor.predict(rec.pc))
    return predictor


class TestComponentStateDicts:
    def test_bimodal_roundtrip(self, simple_trace):
        src = warm(BimodalPredictor(entries=256), simple_trace.slice(0, 1000))
        dst = BimodalPredictor(entries=256)
        dst.load_state_dict(src.state_dict())
        for pc in {r.pc for r in simple_trace.records[:100]}:
            assert dst.predict(pc) == src.predict(pc)

    def test_gshare_roundtrip(self, simple_trace):
        src = warm(
            GSharePredictor(entries=1024, history_length=8),
            simple_trace.slice(0, 1000),
        )
        dst = GSharePredictor(entries=1024, history_length=8)
        dst.load_state_dict(src.state_dict())
        assert dst.history.bits == src.history.bits
        for pc in {r.pc for r in simple_trace.records[:100]}:
            assert dst.predict(pc) == src.predict(pc)

    def test_perceptron_roundtrip(self, simple_trace):
        src = warm(
            PerceptronPredictor(entries=64, history_length=12),
            simple_trace.slice(0, 1000),
        )
        dst = PerceptronPredictor(entries=64, history_length=12)
        dst.load_state_dict(src.state_dict())
        for pc in {r.pc for r in simple_trace.records[:50]}:
            assert dst.output(pc) == src.output(pc)


class TestHybridPersistence:
    def test_baseline_hybrid_roundtrip(self, tmp_path, simple_trace):
        src = warm(make_baseline_hybrid(), simple_trace)
        path = str(tmp_path / "hybrid.npz")
        src.save(path)
        dst = make_baseline_hybrid()
        dst.load(path)
        assert dst.history.bits == src.history.bits
        mismatches = sum(
            1
            for rec in simple_trace.records[:500]
            if dst.predict(rec.pc) != src.predict(rec.pc)
        )
        assert mismatches == 0

    def test_warm_predictor_beats_cold(self, tmp_path, simple_trace):
        """Persisted state must actually carry learning across runs."""
        src = warm(make_baseline_hybrid(), simple_trace)
        path = str(tmp_path / "hybrid.npz")
        src.save(path)

        warm_pred = make_baseline_hybrid()
        warm_pred.load(path)
        cold_pred = make_baseline_hybrid()
        for rec in simple_trace.records[:800]:
            warm_pred.update(rec.pc, rec.taken, warm_pred.predict(rec.pc))
            cold_pred.update(rec.pc, rec.taken, cold_pred.predict(rec.pc))
        assert warm_pred.stats.accuracy >= cold_pred.stats.accuracy

    def test_gshare_perceptron_hybrid_roundtrip(self, tmp_path, simple_trace):
        src = warm(make_gshare_perceptron_hybrid(), simple_trace.slice(0, 2000))
        path = str(tmp_path / "gp.npz")
        src.save(path)
        dst = make_gshare_perceptron_hybrid()
        dst.load(path)
        for rec in simple_trace.records[:200]:
            assert dst.predict(rec.pc) == src.predict(rec.pc)

    def test_kind_mismatch_rejected(self, tmp_path, simple_trace):
        from repro.core.perceptron_estimator import PerceptronConfidenceEstimator

        est = PerceptronConfidenceEstimator()
        path = str(tmp_path / "est.npz")
        est.save(path)
        with pytest.raises(StateError):
            make_baseline_hybrid().load(path)

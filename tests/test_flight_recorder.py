"""Tests for the flight-recorder layer added on top of telemetry.

Covers the cross-process span contract (pid-namespaced span ids, the
worker capture/replay handoff, the Chrome-trace timeline export), the
opt-in profiling attribution (per-span CPU/alloc, cProfile hotspot
accumulator and its worker merge), histogram quantiles and the new
Markdown percentile columns, the persisted telemetry history in the
result store (including the v1 -> v2 additive migration), the telemetry
diff and its CLI, and the bench gate's regression attribution.
"""

import json
import os

import pytest

from repro import telemetry
from repro.engine import Engine, EstimatorSpec, SimJob
from repro.results import ResultStore, check_regression
from repro.results.store import STORE_SCHEMA
from repro.telemetry import spans as spans_mod
from repro.telemetry.diff import diff_runs, load_run_document
from repro.telemetry.profile import (
    PROFILE_KIND,
    PROFILE_SCHEMA,
    profile_block,
    validate_profile_doc,
)
from repro.telemetry.registry import (
    SECONDS_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
)
from repro.telemetry.schema import EVENT_SCHEMA, validate_event
from repro.telemetry.timeline import chrome_trace, load_trace, write_chrome_trace

JOB = SimJob(
    benchmark="gzip",
    n_branches=2_000,
    warmup=500,
    seed=1,
    estimator=EstimatorSpec.of("perceptron", threshold=0),
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()
    telemetry.disable_profiling()
    telemetry.reset_profile()
    telemetry.drain_span_capture()
    yield
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()
    telemetry.disable_profiling()
    telemetry.reset_profile()
    telemetry.drain_span_capture()


def _trace_lines(path):
    return [
        json.loads(line)
        for line in open(path, encoding="utf-8")
        if line.strip()
    ]


class TestSpanIdAllocation:
    def test_ids_are_pid_namespaced(self, monkeypatch):
        """Regression: a forked worker inheriting the parent's counter
        must re-seed into its own namespace, not keep allocating the
        parent's ids."""
        parent_id = spans_mod._alloc_id()
        # Simulate the post-fork world: same module globals, new pid.
        fake_pid = os.getpid() + 1
        monkeypatch.setattr(spans_mod.os, "getpid", lambda: fake_pid)
        worker_id = spans_mod._alloc_id()
        assert worker_id != parent_id
        assert worker_id >> spans_mod._ID_BITS == fake_pid & spans_mod._PID_MASK
        # And back in the parent, allocation resumes in its namespace.
        monkeypatch.undo()
        resumed = spans_mod._alloc_id()
        assert resumed >> spans_mod._ID_BITS == (
            os.getpid() & spans_mod._PID_MASK
        )
        assert resumed != worker_id

    def test_events_carry_pid_and_monotonic_ts(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        telemetry.set_trace_path(path)
        with telemetry.trace_span("x"):
            telemetry.log_event("mark", message="m")
        telemetry.close_trace()
        meta, log, span = _trace_lines(path)
        assert meta == {
            "event": "meta", "schema": EVENT_SCHEMA, "pid": os.getpid(),
        }
        for event in (span, log):
            assert event["pid"] == os.getpid()
            assert isinstance(event["ts"], float)
        assert validate_event(span) == []
        assert validate_event(log) == []


class TestCaptureReplay:
    def test_capture_buffers_and_clears_stack(self):
        telemetry.begin_span_capture()
        assert telemetry.tracing_active()
        with telemetry.trace_span("root"):
            with telemetry.trace_span("child"):
                pass
        events = telemetry.drain_span_capture()
        assert not telemetry.tracing_active()
        by_name = {e["name"]: e for e in events}
        assert by_name["root"]["parent_id"] is None
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        # Draining again yields nothing (buffer disarmed).
        assert telemetry.drain_span_capture() == []

    def test_replay_reparents_roots_under_open_span(self, tmp_path):
        telemetry.begin_span_capture()
        with telemetry.trace_span("worker.task"):
            telemetry.log_event("worker.note", message="n")
        captured = telemetry.drain_span_capture()

        path = str(tmp_path / "t.jsonl")
        telemetry.set_trace_path(path)
        with telemetry.trace_span("dispatch") as parent:
            telemetry.replay_captured(captured)
        telemetry.close_trace()
        lines = _trace_lines(path)
        by_name = {e["name"]: e for e in lines[1:]}
        # The worker's root span re-parents under the dispatching span;
        # linkage *inside* the captured batch is preserved untouched.
        assert by_name["worker.task"]["parent_id"] == parent.span_id
        assert (
            by_name["worker.note"]["parent_id"]
            == by_name["worker.task"]["span_id"]
        )

    def test_replay_without_sink_is_a_noop(self):
        telemetry.replay_captured(
            [{"event": "span", "name": "x", "parent_id": None}]
        )  # no sink, no buffer: must not raise


class TestQuantilesAndMax:
    def _hist(self, values):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in values:
            h.observe(v)
        return reg.snapshot().histograms["h"]

    def test_max_tracked_and_merged(self):
        hist = self._hist([0.05, 5.0, 0.5])
        assert hist["max"] == 5.0
        parent = MetricsRegistry(enabled=True)
        parent.histogram("h", buckets=(0.1, 1.0, 10.0)).observe(0.2)
        from repro.telemetry.registry import MetricsSnapshot

        parent.merge(MetricsSnapshot(histograms={"h": hist}))
        assert parent.snapshot().histograms["h"]["max"] == 5.0

    def test_quantiles_interpolate_within_buckets(self):
        hist = self._hist([0.5] * 10)  # all in the (0.1, 1.0] bucket
        # Interpolation runs from the bucket's lower bound toward its
        # upper bound clamped at the tracked max (0.5 here): the p50
        # estimate must land strictly inside (0.1, 0.5].
        p50 = histogram_quantile(hist, 0.5)
        assert 0.1 < p50 <= 0.5
        # p100 clamps to the tracked max, not the bucket bound.
        assert histogram_quantile(hist, 1.0) == pytest.approx(0.5)

    def test_quantile_edge_cases(self):
        assert histogram_quantile(
            {"buckets": [1.0], "counts": [0, 0], "count": 0,
             "sum": 0.0, "max": 0.0},
            0.5,
        ) == 0.0
        overflow = self._hist([100.0])  # lands past the last bound
        assert histogram_quantile(overflow, 0.99) == pytest.approx(100.0)

    def test_markdown_report_has_percentile_columns(self):
        reg = MetricsRegistry(enabled=True)
        for v in (0.2, 0.4, 1.8):
            reg.histogram(
                "span_seconds", buckets=SECONDS_BUCKETS, span="phase"
            ).observe(v)
        text = telemetry.render_markdown(telemetry.metrics_doc(reg.snapshot()))
        assert "p50" in text and "p95" in text and "max" in text
        assert "1.8" in text  # the max value is reported


class TestSchemaErrorPaths:
    def test_unknown_event_kind(self):
        assert any(
            "must be one of" in p
            for p in validate_event({"event": "metric", "name": "x"})
        )

    def test_meta_requires_pid_and_schema(self):
        assert any(
            "pid" in p
            for p in validate_event({"event": "meta", "schema": EVENT_SCHEMA})
        )
        assert any(
            "schema" in p
            for p in validate_event({"event": "meta", "schema": 1, "pid": 1})
        )

    def test_span_field_errors(self):
        base = {
            "event": "span", "name": "x", "span_id": 1, "parent_id": None,
            "pid": 1, "ts": 0.0, "duration_s": 0.1, "ok": True,
        }
        assert validate_event(base) == []
        for field, bad, needle in [
            ("name", 7, "name"),
            ("span_id", "a", "span_id"),
            ("parent_id", "a", "parent_id"),
            ("pid", None, "pid"),
            ("ts", "now", "ts"),
            ("duration_s", None, "duration_s"),
            ("ok", 1, "ok"),
            ("cpu_ns", 1.5, "cpu_ns"),
            ("alloc_bytes", "x", "alloc_bytes"),
            ("fields", [1], "fields"),
        ]:
            problems = validate_event({**base, field: bad})
            assert any(needle in p for p in problems), (field, problems)

    def test_log_field_errors(self):
        base = {
            "event": "log", "name": "x", "level": "WARNING", "message": "m",
            "parent_id": None, "pid": 1, "ts": 0.0, "fields": {},
        }
        assert validate_event(base) == []
        assert any(
            "level" in p for p in validate_event({**base, "level": 30})
        )
        assert any(
            "fields" in p for p in validate_event({**base, "fields": None})
        )

    def test_trace_file_with_truncated_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(
                {"event": "meta", "schema": EVENT_SCHEMA, "pid": 1}
            )
            + "\n"
            + '{"event": "span", "name": "x", "span_i'  # truncated write
        )
        problems = telemetry.validate_trace_file(str(path))
        assert any("not valid JSON" in p for p in problems)

    def test_histogram_missing_max_rejected(self):
        doc = telemetry.metrics_doc()
        doc["histograms"] = {
            "h": {"buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}
        }
        assert any("max" in p for p in telemetry.validate_metrics_doc(doc))


def _synthetic_trace(path, pid_a=100, pid_b=200, collide=False):
    """Two-process trace: a parent span with a worker span beside it."""
    events = [
        {"event": "meta", "schema": EVENT_SCHEMA, "pid": pid_a},
        {
            "event": "span", "name": "parent.work", "span_id": 11,
            "parent_id": None, "pid": pid_a, "ts": 1.0,
            "duration_s": 2.0, "ok": True, "fields": {"k": "v"},
        },
        {
            "event": "span", "name": "worker.segment",
            "span_id": 11 if collide else 21, "parent_id": 11,
            "pid": pid_b, "ts": 1.5, "duration_s": 0.5, "ok": True,
        },
        {
            "event": "log", "name": "speculation.guess", "level": "DEBUG",
            "message": "guessed", "parent_id": 11, "pid": pid_a,
            "ts": 1.2, "fields": {"position": 4},
        },
    ]
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


class TestTimelineExport:
    def test_chrome_trace_shape(self, tmp_path):
        src = str(tmp_path / "t.jsonl")
        _synthetic_trace(src)
        events, summary = load_trace(src)
        assert summary["meta_pid"] == 100 and summary["skipped"] == 0
        doc = chrome_trace(events, meta_pid=100)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {s["name"] for s in spans} == {"parent.work", "worker.segment"}
        # Timestamps rebase to the earliest event, in microseconds.
        parent = next(s for s in spans if s["name"] == "parent.work")
        worker = next(s for s in spans if s["name"] == "worker.segment")
        assert parent["ts"] == 0.0 and worker["ts"] == pytest.approx(5e5)
        assert parent["args"]["k"] == "v"
        assert instants[0]["name"] == "speculation.guess"
        labels = {m["pid"]: m["args"]["name"] for m in metas}
        assert labels[100] == "repro parent"
        assert labels[200] == "repro worker 200"

    def test_write_chrome_trace_summary_and_collisions(self, tmp_path):
        src, out = str(tmp_path / "t.jsonl"), str(tmp_path / "t.json")
        _synthetic_trace(src)
        summary = write_chrome_trace(src, out)
        assert summary["spans"] == 2
        assert summary["pids"] == [100, 200]
        assert summary["span_id_collisions"] == 0
        assert json.load(open(out, encoding="utf-8"))["traceEvents"]

        _synthetic_trace(src, collide=True)
        assert write_chrome_trace(src, out)["span_id_collisions"] == 1

    def test_load_trace_rejects_old_schema(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"event": "meta", "schema": 1}\n')
        with pytest.raises(ValueError, match="schema"):
            load_trace(str(path))
        path.write_text('{"event": "span", "name": "x"}\n')
        with pytest.raises(ValueError, match="meta"):
            load_trace(str(path))

    def test_invalid_lines_are_skipped_not_fatal(self, tmp_path):
        src = str(tmp_path / "t.jsonl")
        _synthetic_trace(src)
        with open(src, "a", encoding="utf-8") as fh:
            fh.write('{"event": "span", "name": "no-pid"}\n')
            fh.write("{truncated\n")
        events, summary = load_trace(src)
        assert len(events) == 3
        assert summary["skipped"] == 2

    def test_timeline_cli(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        src, out = str(tmp_path / "t.jsonl"), str(tmp_path / "t.json")
        _synthetic_trace(src)
        assert main(["timeline", src, "-o", out]) == 0
        assert "2 spans across 2 process(es)" in capsys.readouterr().out
        _synthetic_trace(src, collide=True)
        assert main(["timeline", src, "-o", out]) == 1  # collision => fail
        assert main(["timeline", str(tmp_path / "nope.jsonl"), "-o", out]) == 2


class TestProfiling:
    def test_profile_block_accumulates_hotspots(self):
        telemetry.enable_profiling()

        def busy():
            return sum(i * i for i in range(20_000))

        with profile_block():
            busy()
        doc = telemetry.profile_document()
        assert validate_profile_doc(doc) == []
        assert doc["schema"] == PROFILE_SCHEMA and doc["kind"] == PROFILE_KIND
        assert any("busy" in h["func"] for h in doc["hotspots"])

    def test_profile_block_noop_when_disabled_or_nested(self):
        with profile_block():  # profiling off: plain passthrough
            pass
        assert telemetry.profile_document()["hotspots"] == []
        telemetry.enable_profiling()
        with profile_block():
            with profile_block():  # nested: inner must not re-enter cProfile
                sum(range(1000))
        assert telemetry.profile_document()["total_functions"] > 0

    def test_drain_and_merge_roundtrip(self):
        telemetry.enable_profiling()
        with profile_block():
            sorted(range(1000), reverse=True)
        drained = telemetry.drain_profile()
        assert drained and telemetry.profile_document()["hotspots"] == []
        telemetry.merge_profile(drained)
        telemetry.merge_profile(drained)  # additive
        doc = telemetry.profile_document()
        key = next(iter(drained))
        merged = next(h for h in doc["hotspots"] if h["func"] == key)
        assert merged["calls"] == 2 * drained[key][0]

    def test_spans_record_cpu_and_alloc_when_profiling(self, tmp_path):
        telemetry.enable_profiling()
        path = str(tmp_path / "t.jsonl")
        telemetry.set_trace_path(path)
        telemetry.enable()
        with telemetry.trace_span("work"):
            blob = list(range(50_000))
            del blob
        telemetry.close_trace()
        span = _trace_lines(path)[1]
        assert isinstance(span["cpu_ns"], int)
        assert isinstance(span["alloc_bytes"], int)
        snap = telemetry.get_registry().snapshot()
        assert snap.histograms["span_cpu_seconds{span=work}"]["count"] == 1

    def test_spans_skip_profiling_fields_when_off(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        telemetry.set_trace_path(path)
        with telemetry.trace_span("work"):
            pass
        telemetry.close_trace()
        span = _trace_lines(path)[1]
        assert "cpu_ns" not in span and "alloc_bytes" not in span

    def test_validate_profile_doc_errors(self):
        assert validate_profile_doc([]) != []
        assert any(
            "schema" in p
            for p in validate_profile_doc(
                {"schema": 99, "kind": PROFILE_KIND,
                 "total_functions": 0, "hotspots": []}
            )
        )
        bad_spot = {
            "schema": PROFILE_SCHEMA, "kind": PROFILE_KIND,
            "total_functions": 1,
            "hotspots": [{"func": 3, "calls": "x", "prim_calls": 1,
                          "self_s": "y", "cum_s": 0.1}],
        }
        problems = validate_profile_doc(bad_spot)
        assert any("func" in p for p in problems)
        assert any("calls" in p for p in problems)
        assert any("self_s" in p for p in problems)


def _metrics_with_spans(spans):
    """A metrics document with one span_seconds series per (name, secs)."""
    reg = MetricsRegistry(enabled=True)
    for name, seconds in spans:
        reg.histogram(
            "span_seconds", buckets=SECONDS_BUCKETS, span=name
        ).observe(seconds)
    return telemetry.metrics_doc(reg.snapshot())


def _profile_doc(hotspots):
    return {
        "schema": PROFILE_SCHEMA,
        "kind": PROFILE_KIND,
        "total_functions": len(hotspots),
        "hotspots": [
            {"func": func, "calls": 1, "prim_calls": 1,
             "self_s": cum, "cum_s": cum}
            for func, cum in hotspots
        ],
    }


class TestDiff:
    def test_rank_orders_by_added_seconds(self):
        a = _metrics_with_spans([("replay", 1.0), ("tracegen", 0.5)])
        b = _metrics_with_spans([("replay", 4.0), ("tracegen", 0.4)])
        diff = diff_runs(a, b)
        suspects = diff.rank()
        assert suspects[0] == {
            "kind": "span", "name": "replay", "delta_s": pytest.approx(3.0),
        }
        # Spans that got *faster* are never suspects.
        assert all(s["name"] != "tracegen" for s in suspects)

    def test_hotspots_merge_into_suspects(self):
        a = _metrics_with_spans([("replay", 1.0)])
        b = _metrics_with_spans([("replay", 1.2)])
        diff = diff_runs(
            a, b,
            _profile_doc([("mod.py:1:slow", 0.1)]),
            _profile_doc([("mod.py:1:slow", 2.5)]),
        )
        top = diff.rank()[0]
        assert top["kind"] == "hotspot" and top["name"] == "mod.py:1:slow"

    def test_counter_deltas_and_markdown(self):
        a = _metrics_with_spans([("replay", 1.0)])
        b = _metrics_with_spans([("replay", 2.0)])
        a["counters"] = {"engine_replays_total": 3}
        b["counters"] = {"engine_replays_total": 9}
        diff = diff_runs(a, b, labels=("base", "new"))
        assert diff.counters[0]["delta"] == 6
        text = diff.render_markdown()
        assert "# Telemetry diff: base -> new" in text
        assert "## Spans (by added seconds)" in text
        assert "## Counters (by |Δ|)" in text
        assert "## Top suspects" in text
        payload = diff.as_dict()
        assert payload["suspects"][0]["name"] == "replay"

    def test_load_run_document_kinds(self, tmp_path):
        metrics = _metrics_with_spans([("x", 1.0)])
        profile = _profile_doc([("f.py:1:f", 1.0)])
        run = tmp_path / "run.json"
        run.write_text(json.dumps(
            {"kind": "repro-telemetry-run", "metrics": metrics,
             "profile": profile, "meta": {}}
        ))
        m, p = load_run_document(str(run))
        assert m == metrics and p == profile
        bare = tmp_path / "m.json"
        bare.write_text(json.dumps(metrics))
        assert load_run_document(str(bare)) == (metrics, None)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "nope"}))
        with pytest.raises(ValueError, match="kind"):
            load_run_document(str(bad))

    def test_diff_cli_on_files_and_store(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        with open(a, "w") as fh:
            json.dump(_metrics_with_spans([("replay", 1.0)]), fh)
        with open(b, "w") as fh:
            json.dump(_metrics_with_spans([("replay", 3.0)]), fh)
        assert main(["diff", a, b, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["suspects"][0]["name"] == "replay"

        store_path = str(tmp_path / "s.sqlite")
        with ResultStore(store_path) as store:
            ra = store.put_telemetry(
                "bench", "fp", _metrics_with_spans([("replay", 1.0)])
            )
            rb = store.put_telemetry(
                "bench", "fp", _metrics_with_spans([("replay", 3.0)])
            )
        assert main(
            ["diff", str(ra), str(rb), "--store", store_path]
        ) == 0
        assert "replay" in capsys.readouterr().out
        assert main(["diff", "98", "99", "--store", store_path]) == 2


class TestStoreTelemetry:
    def test_round_trip_and_listing(self):
        metrics = _metrics_with_spans([("x", 1.0)])
        profile = _profile_doc([("f.py:1:f", 1.0)])
        with ResultStore(":memory:") as store:
            r1 = store.put_telemetry("sweep-q", "fp1", metrics)
            r2 = store.put_telemetry(
                "sweep-q", "fp1", metrics, profile=profile, meta={"w": 2}
            )
            run = store.get_telemetry(r2)
            assert run.metrics == metrics and run.profile == profile
            assert run.meta == {"w": 2}
            assert store.get_telemetry(r1).profile is None
            assert store.telemetry_runs() == [
                (r1, "sweep-q", "fp1", False), (r2, "sweep-q", "fp1", True),
            ]
            assert store.telemetry_runs(name="other") == []
            assert store.summary()["telemetry"] == 2

    def test_latest_telemetry_with_before(self):
        with ResultStore(":memory:") as store:
            r1 = store.put_telemetry("b", "fp", _metrics_with_spans([]))
            r2 = store.put_telemetry("b", "fp", _metrics_with_spans([]))
            assert store.latest_telemetry("b").run_id == r2
            assert store.latest_telemetry("b", before=r2).run_id == r1
            assert store.latest_telemetry("b", before=r1) is None

    def test_corrupt_run_is_rejected(self):
        with ResultStore(":memory:") as store:
            run_id = store.put_telemetry(
                "b", "fp", _metrics_with_spans([("x", 1.0)])
            )
            store._db.execute(
                "UPDATE telemetry SET metrics = '{}' WHERE run_id = ?",
                (run_id,),
            )
            store._db.commit()
            assert store.get_telemetry(run_id) is None
            assert store.latest_telemetry("b") is None

    def test_v1_store_migrates_in_place(self, tmp_path):
        path = str(tmp_path / "r.sqlite")
        with ResultStore(path) as store:
            store.put_bench("quick", 1.0)
            # Regress the store to the v1 layout: no telemetry table,
            # old version stamp.
            store._db.executescript("DROP TABLE telemetry;")
            store._db.execute(
                "UPDATE meta SET value = '1' WHERE key = 'store_schema'"
            )
            store._db.commit()
        with ResultStore(path) as store:  # reopen: additive migration
            stamped = store._db.execute(
                "SELECT value FROM meta WHERE key = 'store_schema'"
            ).fetchone()[0]
            assert stamped == str(STORE_SCHEMA)
            # Old rows intact, new table usable.
            assert [s.seconds for s in store.bench_history("quick")] == [1.0]
            run_id = store.put_telemetry("b", "fp", _metrics_with_spans([]))
            assert store.get_telemetry(run_id) is not None


class TestGateAttribution:
    def test_regression_names_the_slow_span(self):
        base = _metrics_with_spans([("engine.run", 1.0)])
        slow = _metrics_with_spans(
            [("engine.run", 1.1), ("bench.injected_slowdown", 5.0)]
        )
        with ResultStore(":memory:") as store:
            first = check_regression(store, "q", 1.0, metrics_doc=base)
            assert first.passed and first.telemetry_run is not None
            # The baseline sample links its telemetry run.
            meta = store.bench_history("q")[0].meta
            assert meta["telemetry_run"] == first.telemetry_run
            verdict = check_regression(store, "q", 6.0, metrics_doc=slow)
        assert not verdict.passed
        assert verdict.suspects[0][:2] == ("span", "bench.injected_slowdown")
        assert verdict.suspects[0][2] == pytest.approx(5.0)
        assert "bench.injected_slowdown" in verdict.format()

    def test_regression_event_carries_suspects(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        telemetry.enable()
        telemetry.set_trace_path(str(trace))
        with ResultStore(":memory:") as store:
            check_regression(
                store, "q", 1.0,
                metrics_doc=_metrics_with_spans([("replay", 1.0)]),
            )
            check_regression(
                store, "q", 9.0,
                metrics_doc=_metrics_with_spans([("replay", 8.0)]),
            )
        telemetry.close_trace()
        events = _trace_lines(str(trace))
        fired = [e for e in events if e.get("name") == "bench_gate_regression"]
        assert fired
        suspects = fired[0]["fields"]["suspects"]
        assert suspects[0]["kind"] == "span"
        assert suspects[0]["name"] == "replay"

    def test_no_telemetry_means_no_suspects(self):
        with ResultStore(":memory:") as store:
            check_regression(store, "q", 1.0)
            verdict = check_regression(store, "q", 9.0)
        assert not verdict.passed
        assert verdict.suspects == ()
        assert verdict.telemetry_run is None

    def test_fallback_baseline_when_best_sample_unlinked(self):
        with ResultStore(":memory:") as store:
            # History exists but predates telemetry linking.
            check_regression(store, "q", 1.0)
            store.put_telemetry(
                "q", "bench:q", _metrics_with_spans([("replay", 1.0)])
            )
            verdict = check_regression(
                store, "q", 9.0,
                metrics_doc=_metrics_with_spans([("replay", 8.0)]),
            )
        assert verdict.suspects and verdict.suspects[0][1] == "replay"


class TestCrossProcessTrace:
    def test_jobs_trace_merges_worker_spans(self, tmp_path):
        """The acceptance path: a --jobs 2 run yields one coherent trace
        with spans from multiple pids and zero span-id collisions."""
        path = str(tmp_path / "t.jsonl")
        telemetry.enable()
        telemetry.set_trace_path(path)
        engine = Engine(max_workers=2)
        with telemetry.trace_span("driver"):
            engine.run([JOB.with_(seed=s) for s in (21, 22, 23)])
        telemetry.close_trace()

        assert telemetry.validate_trace_file(path) == []
        out = str(tmp_path / "t.json")
        summary = write_chrome_trace(path, out)
        assert summary["span_id_collisions"] == 0
        assert len(summary["pids"]) >= 2, summary
        lines = _trace_lines(path)
        driver = next(e for e in lines if e.get("name") == "driver")
        workers = [e for e in lines if e.get("name") == "worker.replay"]
        assert len(workers) == 3
        # Worker roots hang off the parent's span tree.
        engine_run = next(e for e in lines if e.get("name") == "engine.run")
        assert engine_run["parent_id"] == driver["span_id"]
        for span in workers:
            assert span["pid"] != os.getpid()
            assert span["parent_id"] == engine_run["span_id"]
            assert span["fields"]["backend"] == "reference"

    def test_jobs_profile_merges_worker_hotspots(self):
        telemetry.enable()
        telemetry.enable_profiling()
        engine = Engine(max_workers=2)
        engine.run([JOB.with_(seed=s) for s in (31, 32, 33)])
        doc = telemetry.profile_document()
        assert validate_profile_doc(doc) == []
        assert any("_replay_trace_impl" in h["func"] for h in doc["hotspots"])

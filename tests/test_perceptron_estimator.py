"""Unit tests for the perceptron confidence estimator (the paper's core)."""

import pytest

from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.types import ConfidenceLevel


def train_stream(est, pc, outcomes_correct, prediction=True):
    """Feed a stream of (prediction-correct?) events for one branch."""
    for correct in outcomes_correct:
        sig = est.estimate(pc, prediction)
        est.train(pc, prediction, correct, sig)
        est.shift_history(prediction if correct else not prediction)


class TestConstruction:
    def test_paper_default_geometry(self):
        est = PerceptronConfidenceEstimator()
        assert est.entries == 128
        assert est.history_length == 32
        assert est.weight_bits == 8
        assert est.config_label() == "P128W8H32"

    def test_storage_near_4kb(self):
        est = PerceptronConfidenceEstimator()
        # 128 x 32 x 8 bits = 4KB of history weights (+ bias column).
        assert est.storage_bits == 128 * 33 * 8

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PerceptronConfidenceEstimator(mode="bogus")

    def test_tnt_rejects_strong_threshold(self):
        with pytest.raises(ValueError):
            PerceptronConfidenceEstimator(mode="tnt", strong_threshold=10)

    def test_tnt_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            PerceptronConfidenceEstimator(mode="tnt", threshold=-5)

    def test_strong_threshold_ordering(self):
        with pytest.raises(ValueError):
            PerceptronConfidenceEstimator(threshold=0, strong_threshold=-10)

    def test_training_threshold_validation(self):
        with pytest.raises(ValueError):
            PerceptronConfidenceEstimator(training_threshold=-1)


class TestCicClassification:
    def test_cold_estimator_output_at_threshold(self):
        est = PerceptronConfidenceEstimator(threshold=0)
        sig = est.estimate(0x40, True)
        assert sig.raw == 0
        assert not sig.low_confidence  # y <= lambda -> high

    def test_output_above_threshold_is_low(self):
        est = PerceptronConfidenceEstimator(threshold=0, training_threshold=200)
        # Mispredicted stream pushes the output positive.
        train_stream(est, 0x40, [False] * 30)
        assert est.estimate(0x40, True).low_confidence

    def test_correct_stream_goes_high_confidence(self):
        est = PerceptronConfidenceEstimator(threshold=-20)
        train_stream(est, 0x40, [True] * 60)
        sig = est.estimate(0x40, True)
        assert not sig.low_confidence
        assert sig.raw < -20

    def test_three_region_levels(self):
        est = PerceptronConfidenceEstimator(
            threshold=-10, strong_threshold=10, training_threshold=200
        )
        train_stream(est, 0x40, [False] * 40)
        assert est.estimate(0x40, True).level is ConfidenceLevel.STRONG_LOW
        est.reset()
        train_stream(est, 0x40, [True] * 60)
        assert est.estimate(0x40, True).level is ConfidenceLevel.HIGH

    def test_cb_cluster_settles_past_training_threshold(self):
        """Always-correct branches stop training once y < -T (the
        Figure 4 CB cluster position)."""
        T = 40
        est = PerceptronConfidenceEstimator(threshold=0, training_threshold=T)
        train_stream(est, 0x40, [True] * 300)
        y = est.estimate(0x40, True).raw
        assert -(T + 40) < y < -T

    def test_learns_history_conditional_mispredicts(self):
        """A branch mispredicted only in specific history contexts must
        be separated: low confidence there, high elsewhere."""
        est = PerceptronConfidenceEstimator(threshold=0)
        pc = 0x40
        import numpy as np

        rng = np.random.default_rng(3)
        for _ in range(600):
            # Context: history bit 4 set -> the prediction goes wrong.
            risky = bool((est.history.bits >> 4) & 1)
            correct = not risky
            sig = est.estimate(pc, True)
            est.train(pc, True, correct, sig)
            est.shift_history(bool(rng.integers(2)))
        risky_flags = safe_flags = 0
        for _ in range(300):
            risky = bool((est.history.bits >> 4) & 1)
            sig = est.estimate(pc, True)
            if risky:
                risky_flags += sig.low_confidence
            else:
                safe_flags += sig.low_confidence
            est.shift_history(bool(rng.integers(2)))
        assert risky_flags > 100
        assert safe_flags < 30


class TestTntMode:
    def test_low_confidence_near_zero(self):
        est = PerceptronConfidenceEstimator(mode="tnt", threshold=30)
        assert est.estimate(0x40, True).low_confidence  # cold output 0

    def test_strong_direction_is_high_confidence(self):
        est = PerceptronConfidenceEstimator(mode="tnt", threshold=10)
        # Direction training: consistently taken.
        for _ in range(60):
            sig = est.estimate(0x40, True)
            est.train(0x40, True, True, sig)
            est.shift_history(True)
        sig = est.estimate(0x40, True)
        assert sig.raw > 10
        assert not sig.low_confidence

    def test_tnt_trains_on_direction_not_outcome(self):
        """A always-taken branch that is always MISpredicted still
        produces a large positive (strongly-taken) output -- the tnt
        failure mode of Section 5.3."""
        est = PerceptronConfidenceEstimator(mode="tnt", threshold=10)
        for _ in range(60):
            sig = est.estimate(0x40, False)  # predicts not-taken
            est.train(0x40, False, False, sig)  # wrong: branch was taken
            est.shift_history(True)
        assert est.estimate(0x40, False).raw > 10  # "confidently taken"


class TestHousekeeping:
    def test_shift_history(self):
        est = PerceptronConfidenceEstimator()
        est.shift_history(True)
        assert est.history.bits == 1

    def test_reset(self):
        est = PerceptronConfidenceEstimator()
        train_stream(est, 0x40, [False] * 10)
        est.reset()
        assert est.estimate(0x40, True).raw == 0
        assert est.history.bits == 0

    def test_estimate_is_pure(self):
        est = PerceptronConfidenceEstimator()
        before = est.array.snapshot()
        est.estimate(0x40, True)
        assert (est.array.snapshot() == before).all()

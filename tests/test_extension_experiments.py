"""Smoke tests for the beyond-the-paper experiments."""

import pytest

from repro.experiments import (
    ablation_combined,
    ablation_training,
    energy,
    oracle_bound,
    smt,
)
from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import (
    EXPERIMENTS,
    EXTENSION_EXPERIMENTS,
    PAPER_EXPERIMENTS,
)

SMALL = ExperimentSettings(
    n_branches=8_000, warmup=2_500, benchmarks=("gzip", "mcf")
)


class TestOracleBound:
    def test_perfect_oracle_dominates(self):
        result = oracle_bound.run(SMALL)
        perfect = result.row("oracle 100%/100%")
        real = result.row("perceptron l=0")
        assert perfect.uop_reduction_pct > real.uop_reduction_pct
        assert perfect.performance_loss_pct <= real.performance_loss_pct + 0.5
        assert "Oracle" in result.format()

    def test_coverage_scales_savings(self):
        result = oracle_bound.run(SMALL)
        full = result.row("oracle 100%/100%")
        half = result.row("oracle 50%/100%")
        assert full.uop_reduction_pct > half.uop_reduction_pct

    def test_bad_accuracy_costs_performance(self):
        result = oracle_bound.run(SMALL)
        sloppy = result.row("oracle 100%/50%")
        perfect = result.row("oracle 100%/100%")
        assert sloppy.performance_loss_pct > perfect.performance_loss_pct


class TestEnergy:
    def test_ladder_and_shape(self):
        result = energy.run(SMALL)
        assert [r.threshold for r in result.rows] == list(energy.THRESHOLDS)
        # Looser thresholds save more raw energy (more uops removed).
        assert (
            result.row(-50).energy_savings_pct
            >= result.row(25).energy_savings_pct
        )
        assert "Energy" in result.format()

    def test_energy_tracks_uop_reduction(self):
        result = energy.run(SMALL)
        for row in result.rows:
            if row.uop_reduction_pct > 2:
                assert row.energy_savings_pct > 0


class TestSmt:
    def test_dirty_pair_gains_most(self):
        settings = ExperimentSettings(
            n_branches=8_000, warmup=2_500,
            benchmarks=("gzip", "mcf", "gcc"),
        )
        result = smt.run(
            settings, pairs=(("mcf", "gcc"), ("gzip", "gcc"))
        )
        dirty = result.row(("mcf", "gcc"))
        clean = result.row(("gzip", "gcc"))
        assert dirty.throughput_gain_pct > clean.throughput_gain_pct - 1.0
        # Control always reduces wasted fetch.
        for row in result.rows:
            assert row.controlled_wasted_fraction <= row.baseline_wasted_fraction
        assert "SMT" in result.format()


class TestTrainingAblation:
    def test_cb_cluster_tracks_t(self):
        result = ablation_training.run(SMALL, benchmark="gzip")
        medians = [r.cb_median for r in result.rows]
        # Larger T pushes the correct cluster further negative.
        assert medians == sorted(medians, reverse=True)
        assert "Training threshold" in result.format()

    def test_separation_grows_with_t(self):
        result = ablation_training.run(SMALL, benchmark="gzip")
        assert result.row(160).separation > result.row(16).separation


class TestCombinedAblation:
    def test_fusions_bracket_components(self):
        result = ablation_combined.run(SMALL)
        perc = result.row("perceptron").matrix
        jrs = result.row("enhanced JRS").matrix
        union = result.row("union").matrix
        inter = result.row("intersection").matrix
        cascade = result.row("cascade").matrix
        assert union.spec >= max(perc.spec, jrs.spec) - 0.02
        assert inter.flagged_low <= min(perc.flagged_low, jrs.flagged_low)
        assert perc.spec - 0.05 <= cascade.spec <= jrs.spec + 0.05
        assert "fusion" in result.format()


class TestRegistries:
    def test_disjoint_and_complete(self):
        assert not set(PAPER_EXPERIMENTS) & set(EXTENSION_EXPERIMENTS)
        assert set(EXPERIMENTS) == (
            set(PAPER_EXPERIMENTS) | set(EXTENSION_EXPERIMENTS)
        )
        assert set(EXTENSION_EXPERIMENTS) == {
            "oracle_bound", "energy", "smt",
            "ablation_training", "ablation_combined",
            "ablation_history", "ablation_indexing", "seed_stability",
            "throttle", "warmup_curve", "h2p_confidence",
        }


class TestIndexingAblation:
    def test_schemes_present_and_coherent(self):
        from repro.experiments import ablation_indexing

        result = ablation_indexing.run(SMALL)
        row_scheme = result.row("row P128W8H32")
        path_scheme = result.row("path T512H8")
        for row in result.rows:
            assert 0 <= row.matrix.pvn <= 1
            assert row.storage_kib > 0
        # Matched-storage schemes are within 20% of each other's budget.
        assert abs(row_scheme.storage_kib - path_scheme.storage_kib) < 1.0
        assert "indexing" in result.format()

    def test_smaller_row_array_is_not_better(self):
        from repro.experiments import ablation_indexing

        result = ablation_indexing.run(SMALL)
        full = result.row("row P128W8H32")
        small = result.row("row P32W8H32")
        # Quartering the rows must not improve the flagged catch.
        full_catch = full.matrix.pvn * full.matrix.spec
        small_catch = small.matrix.pvn * small.matrix.spec
        assert small_catch <= full_catch * 1.1


class TestSeedStabilitySmall:
    def test_headline_holds_across_seeds(self):
        from repro.experiments import seed_stability

        result = seed_stability.run(SMALL, seeds=(1, 2))
        assert result.ratio_always_above_one

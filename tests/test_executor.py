"""The pluggable executor layer: serial, pool, dispatch sessions.

The refactor contract: all process fan-out goes through
:mod:`repro.engine.executor` (no direct ``ProcessPoolExecutor`` usage
left in the engine or the speculative scheduler), and executor choice
is a throughput knob only -- serial, pool and auto produce
bit-identical outcomes.
"""

import inspect

import pytest

from repro import telemetry
from repro.engine import (
    Engine,
    PoolExecutor,
    SerialExecutor,
    SimJob,
    resolve_executor,
)
from repro.engine.canonical import canonical_metrics
from repro.engine.executor import Executor


def _jobs(n=3, n_branches=1500):
    return [
        SimJob(benchmark="gzip", n_branches=n_branches, warmup=100, seed=s)
        for s in range(1, n + 1)
    ]


def _double(x):
    return x * 2


class TestNoDirectPoolUsage:
    """Acceptance criterion: fan-out only via the Executor abstraction."""

    @pytest.mark.parametrize("module_name", ["engine", "speculation"])
    def test_no_process_pool_executor(self, module_name):
        import importlib

        module = importlib.import_module(f"repro.engine.{module_name}")
        source = inspect.getsource(module)
        assert "ProcessPoolExecutor" not in source


class TestResolveExecutor:
    def test_auto_picks_by_workers(self):
        assert isinstance(resolve_executor("auto", workers=1), SerialExecutor)
        assert isinstance(resolve_executor(None, workers=1), SerialExecutor)
        pool = resolve_executor("auto", workers=4)
        assert isinstance(pool, PoolExecutor)
        assert pool.max_workers == 4

    def test_explicit_names(self):
        serial = resolve_executor("serial", workers=4)
        assert isinstance(serial, SerialExecutor)
        assert serial.local_workers == 4
        assert isinstance(resolve_executor("pool", workers=1), PoolExecutor)

    def test_instance_passthrough(self):
        executor = PoolExecutor(2)
        assert resolve_executor(executor, workers=8) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("carrier-pigeon")

    def test_fleet_needs_a_queue(self):
        with pytest.raises(ValueError, match="fleet"):
            resolve_executor("fleet")

    def test_fleet_from_cache_dir(self, tmp_path):
        from repro.fleet import FleetExecutor

        executor = resolve_executor("fleet", cache_dir=str(tmp_path))
        assert isinstance(executor, FleetExecutor)
        assert executor.queue_path.startswith(str(tmp_path))

    def test_engine_validates_executor_name(self):
        with pytest.raises(ValueError, match="executor"):
            Engine(executor="carrier-pigeon")


class TestExecutorEquivalence:
    def test_serial_pool_auto_agree(self):
        jobs = _jobs()
        serial = Engine(max_workers=2, executor="serial").run(jobs)
        pool = Engine(max_workers=2, executor="pool").run(jobs)
        auto = Engine(max_workers=2).run(jobs)
        for a, b, c in zip(serial, pool, auto):
            assert a.events == b.events == c.events
            assert (
                canonical_metrics(a.result)
                == canonical_metrics(b.result)
                == canonical_metrics(c.result)
            )

    def test_pool_delegates_single_job_inline(self):
        pool = PoolExecutor(4)
        assert not pool.will_distribute(1)
        assert pool.will_distribute(2)
        assert not PoolExecutor(1).will_distribute(5)
        assert not SerialExecutor(4).will_distribute(5)

    def test_parallel_tally_counts_distributed_batches_only(self):
        jobs = _jobs(2)
        engine = Engine(max_workers=2, executor="pool")
        engine.run(jobs)
        assert engine.stats.parallel_executed == 2
        serial = Engine(max_workers=2, executor="serial")
        serial.run(jobs)
        assert serial.stats.parallel_executed == 0
        assert serial.stats.executed == 2


class TestPoolTelemetryShipments:
    def test_worker_metrics_merge_home(self):
        jobs = _jobs(2)
        registry = telemetry.enable()
        registry.reset()
        try:
            Engine(max_workers=2, executor="pool").run(jobs)
            snap = registry.snapshot()
            replays = sum(
                snap.counter_series("engine_replays_total").values()
            )
            assert replays == len(jobs)
            assert snap.counter("engine_jobs_parallel_total") == len(jobs)
        finally:
            telemetry.disable()
            registry.reset()


class TestDispatchSessions:
    def test_pool_dispatch_returns_value_and_shipment(self):
        with PoolExecutor(2).dispatch(count=False) as session:
            handle = session.submit(_double, 21)
            value, shipment = handle.result()
        assert value == 42
        # count=False: the parent owns counting, nothing ships back.
        assert shipment is not None and shipment.metrics is None

    def test_pool_dispatch_counting_ships_a_snapshot(self):
        registry = telemetry.enable()
        registry.reset()
        try:
            with PoolExecutor(2).dispatch(count=True) as session:
                value, shipment = session.submit(_double, 3).result()
            assert value == 6
            assert shipment.metrics is not None
        finally:
            telemetry.disable()
            registry.reset()

    def test_serial_dispatch_is_lazy(self):
        calls = []

        def task(x):
            calls.append(x)
            return x

        with SerialExecutor().dispatch() as session:
            handle = session.submit(task, 1)
            assert calls == []
            value, shipment = handle.result()
        assert value == 1 and shipment is None and calls == [1]

    def test_serial_dispatch_cancel_skips_work(self):
        from concurrent.futures import CancelledError

        calls = []

        def task():
            calls.append(1)

        with SerialExecutor().dispatch() as session:
            handle = session.submit(task)
            assert handle.cancel()
            with pytest.raises(CancelledError):
                handle.result()
        assert calls == []

    def test_base_executor_has_no_dispatch(self):
        with pytest.raises(NotImplementedError):
            with Executor().dispatch():
                pass


class TestSpeculationThroughExecutor:
    def test_scheduler_accepts_injected_executor(self):
        """The shard fan-out runs through any dispatch-capable executor."""
        from repro.engine import SequentialChain, SpeculativeShardScheduler
        from repro.engine import replay_segmented
        from repro.engine.cache import SegmentCache
        from repro.trace.benchmarks import generate_benchmark_trace

        job = SimJob(
            benchmark="gzip", n_branches=2000, warmup=0, seed=11,
            collect_outputs=True, segment_size=500,
        )
        trace = generate_benchmark_trace("gzip", n_branches=2000, seed=11)
        cache = SegmentCache()
        expected, expected_cp = replay_segmented(
            job, trace, cache=cache, scheduler=SequentialChain()
        )
        cache.clear()  # events gone, chain record survives: shards re-run

        scheduler = SpeculativeShardScheduler(
            max_workers=2, executor=SerialExecutor(2)
        )
        outcome, checkpoint = replay_segmented(
            job, trace, cache=cache, scheduler=scheduler
        )
        assert outcome.events == expected.events
        assert canonical_metrics(outcome.result) == canonical_metrics(
            expected.result
        )
        assert checkpoint.digest == expected_cp.digest

"""Unit tests for the sqlite result store and the regression gate.

Covers the store contract (schema-versioned open, digest-validated
reads, fingerprint-keyed resume queries) and the gate semantics
(compare against best history, record after comparing, deterministic
``BENCH_*.json`` trajectories).
"""

import json

import pytest

from repro import telemetry
from repro.engine import EstimatorSpec, SimJob
from repro.results import (
    ResultStore,
    StoreSchemaError,
    append_trajectory,
    check_regression,
    load_trajectory,
)
from repro.results.gate import TRAJECTORY_SCHEMA


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()


def _job(benchmark="gzip", threshold=0, **kw):
    return SimJob(
        benchmark=benchmark,
        n_branches=kw.pop("n_branches", 5_000),
        warmup=kw.pop("warmup", 1_000),
        seed=kw.pop("seed", 1),
        estimator=EstimatorSpec.of("perceptron", threshold=threshold),
        **kw,
    )


METRICS = {
    "branches": 4000,
    "mispredictions": 300,
    "final_mispredictions": 280,
    "reversals": 50,
    "reversals_correcting": 30,
    "reversals_breaking": 20,
    "low_mispredicted": 200,
    "low_correct": 500,
    "high_mispredicted": 100,
    "high_correct": 3200,
}


class TestStoreJobs:
    def test_round_trip(self):
        job = _job()
        with ResultStore(":memory:") as store:
            record = store.put_job(job, METRICS)
            assert record.fingerprint == job.fingerprint
            got = store.get_job(job.fingerprint)
            assert got is not None
            assert got.metrics == METRICS
            assert got.benchmark == "gzip"
            assert store.has_job(job.fingerprint)
            assert store.job_count() == 1

    def test_missing_deduplicates_like_the_engine(self):
        a, b = _job(), _job(threshold=-25)
        with ResultStore(":memory:") as store:
            store.put_job(a, METRICS)
            # a twice, b twice: one unique missing job remains.
            assert store.missing([a, a, b, b]) == [b]

    def test_corrupt_row_is_reported_and_treated_as_missing(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        telemetry.enable()
        telemetry.set_trace_path(str(trace))
        job = _job()
        with ResultStore(":memory:") as store:
            store.put_job(job, METRICS)
            store.corrupt_job(job.fingerprint)
            assert store.get_job(job.fingerprint) is None
            assert store.missing([job]) == [job]
        telemetry.close_trace()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        corrupt = [
            e for e in events if e.get("name") == "result_store_corrupt_row"
        ]
        assert corrupt, f"no corrupt-row event in {events}"
        assert corrupt[0]["fields"]["fingerprint"] == job.fingerprint
        snap = telemetry.get_registry().snapshot()
        assert snap.counter("result_store_corrupt_rows_total") >= 1

    def test_query_filters(self):
        with ResultStore(":memory:") as store:
            store.put_job(_job("gzip"), METRICS)
            store.put_job(_job("vpr"), METRICS)
            assert {r.benchmark for r in store.query_jobs()} == {"gzip", "vpr"}
            assert [r.benchmark for r in store.query_jobs(benchmark="vpr")] == [
                "vpr"
            ]
            assert store.query_jobs(backend="fast") == []

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "r.sqlite")
        job = _job()
        with ResultStore(path) as store:
            store.put_job(job, METRICS)
        with ResultStore(path) as store:
            assert store.get_job(job.fingerprint).metrics == METRICS

    def test_schema_mismatch_rejected_on_open(self, tmp_path):
        path = str(tmp_path / "r.sqlite")
        with ResultStore(path) as store:
            store._db.execute(
                "UPDATE meta SET value = '999' WHERE key = 'store_schema'"
            )
            store._db.commit()
        with pytest.raises(StoreSchemaError, match="store_schema"):
            ResultStore(path)


class TestStoreExperiments:
    def test_round_trip_with_and_without_rows(self):
        with ResultStore(":memory:") as store:
            store.put_experiment(
                "k1", "table2", {"seed": 1}, [{"a": 1.5}], "formatted-1"
            )
            store.put_experiment("k2", "figure4_5", {"seed": 1}, None, "text")
            r1 = store.get_experiment("k1")
            assert r1.rows == [{"a": 1.5}]
            assert r1.formatted == "formatted-1"
            assert store.get_experiment("k2").rows is None
            assert store.experiment_keys() == [
                ("k1", "table2"), ("k2", "figure4_5"),
            ]
            assert store.get_experiment("nonesuch") is None

    def test_summary_counts(self):
        with ResultStore(":memory:") as store:
            store.put_job(_job(), METRICS)
            store.put_experiment("k", "table2", {}, None, "x")
            store.put_bench("quick", 1.5)
            assert store.summary() == {
                "jobs": 1, "experiments": 1, "bench": 1, "telemetry": 0,
            }


class TestGate:
    def test_first_sample_becomes_baseline(self):
        with ResultStore(":memory:") as store:
            verdict = check_regression(store, "quick", 2.0)
            assert verdict.passed and verdict.best is None
            assert [s.seconds for s in store.bench_history("quick")] == [2.0]

    def test_compares_against_best_history(self):
        with ResultStore(":memory:") as store:
            check_regression(store, "quick", 2.0)
            check_regression(store, "quick", 3.0)  # slower but within 1.5x
            verdict = check_regression(store, "quick", 2.9)
            # Best is still 2.0: a slow outlier cannot loosen the gate.
            assert verdict.best == 2.0
            assert verdict.passed

    def test_regression_fires_and_logs(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        telemetry.enable()
        telemetry.set_trace_path(str(trace))
        with ResultStore(":memory:") as store:
            check_regression(store, "quick", 1.0)
            verdict = check_regression(store, "quick", 2.0)
        telemetry.close_trace()
        assert not verdict.passed
        assert verdict.ratio == 2.0
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        fired = [e for e in events if e.get("name") == "bench_gate_regression"]
        assert fired and fired[0]["fields"]["bench"] == "quick"
        snap = telemetry.get_registry().snapshot()
        assert snap.counter(
            "bench_gate_checks_total", bench="quick", verdict="fail"
        ) == 1

    def test_validation(self):
        with ResultStore(":memory:") as store:
            with pytest.raises(ValueError):
                check_regression(store, "q", 0.0)
            with pytest.raises(ValueError):
                check_regression(store, "q", 1.0, max_ratio=0)


class TestTrajectory:
    def test_append_and_load_deterministic(self, tmp_path):
        path = str(tmp_path / "BENCH_quick.json")
        append_trajectory(path, "quick", 1.23456789, label="a")
        append_trajectory(path, "quick", 2.0, label="b")
        points = load_trajectory(path)
        assert points == [
            {"seconds": 1.234568, "label": "a"},
            {"seconds": 2.0, "label": "b"},
        ]
        first = (tmp_path / "BENCH_quick.json").read_bytes()
        # Re-building from the same inputs is byte-identical.
        other = str(tmp_path / "BENCH_other.json")
        append_trajectory(other, "quick", 1.23456789, label="a")
        append_trajectory(other, "quick", 2.0, label="b")
        assert (tmp_path / "BENCH_other.json").read_bytes() == first

    def test_missing_file_is_empty(self, tmp_path):
        assert load_trajectory(str(tmp_path / "nope.json")) == []

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 99, "points": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(str(path))

    def test_schema_constant_in_file(self, tmp_path):
        path = str(tmp_path / "BENCH_q.json")
        append_trajectory(path, "q", 1.0)
        doc = json.loads((tmp_path / "BENCH_q.json").read_text())
        assert doc["schema"] == TRAJECTORY_SCHEMA
        assert doc["name"] == "q"

"""Unit tests for the analysis subpackage (density, sweep, tables)."""

import numpy as np
import pytest

from repro.analysis.density import OutputDensity
from repro.analysis.sweep import sweep_estimator_thresholds
from repro.analysis.tables import format_table
from repro.core.frontend import FrontEndResult
from repro.core.jrs import JRSEstimator
from repro.predictors.hybrid import make_baseline_hybrid


class TestOutputDensity:
    def make(self):
        # CB clustered at -100, MB clustered at +50.
        rng = np.random.default_rng(0)
        cb = rng.normal(-100, 20, 2000)
        mb = rng.normal(50, 20, 200)
        return OutputDensity(cb, mb)

    def test_histogram_shared_bins(self):
        density = self.make()
        edges, cb, mb = density.histogram(bins=40)
        assert len(edges) == 41
        assert cb.sum() == 2000
        assert mb.sum() == 200

    def test_zoom_range(self):
        density = self.make()
        edges, cb, mb = density.histogram(bins=10, value_range=(0, 100))
        assert edges[0] == 0
        assert edges[-1] == 100
        assert mb.sum() > cb.sum()  # MB dominates the positive range

    def test_region_counts(self):
        density = self.make()
        region = density.region(0, float("inf"))
        assert region.mb_dominates
        assert region.mispredict_fraction > 0.9

    def test_three_regions_partition(self):
        density = self.make()
        reversal, gating, high = density.three_regions(30, -30)
        total = reversal.total + gating.total + high.total
        assert total == 2200

    def test_three_regions_validation(self):
        with pytest.raises(ValueError):
            self.make().three_regions(reverse_threshold=-50, gate_threshold=0)

    def test_crossover_found_for_separated_populations(self):
        crossover = self.make().crossover_output()
        assert crossover is not None
        assert -40 < crossover < 60

    def test_crossover_none_when_cb_dominates_everywhere(self):
        rng = np.random.default_rng(1)
        cb = rng.normal(0, 30, 5000)
        mb = rng.normal(0, 30, 100)  # same shape, far fewer
        assert OutputDensity(cb, mb).crossover_output() is None

    def test_from_frontend_result(self):
        result = FrontEndResult()
        result.outputs_correct.extend([-10.0, -20.0])
        result.outputs_mispredicted.append(30.0)
        density = OutputDensity.from_frontend_result(result)
        assert density.correct_outputs.size == 2

    def test_from_empty_result_rejected(self):
        with pytest.raises(ValueError):
            OutputDensity.from_frontend_result(FrontEndResult())

    def test_summary(self):
        summary = self.make().summary()
        assert summary["correct_branches"] == 2000
        assert summary["mb_mean"] > summary["cb_mean"]

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            self.make().histogram(bins=0)


class TestSweep:
    def test_monotone_coverage(self, simple_trace):
        points = sweep_estimator_thresholds(
            simple_trace,
            make_baseline_hybrid,
            lambda t: JRSEstimator(threshold=int(t)),
            thresholds=(3, 7, 11),
            warmup=1000,
        )
        assert len(points) == 3
        # Raising the JRS threshold flags more branches: Spec rises,
        # PVN falls (Table 3 trend).
        specs = [p.spec for p in points]
        assert specs == sorted(specs)

    def test_as_row(self, simple_trace):
        points = sweep_estimator_thresholds(
            simple_trace,
            make_baseline_hybrid,
            lambda t: JRSEstimator(threshold=int(t)),
            thresholds=(7,),
        )
        row = points[0].as_row()
        assert row["lambda"] == 7
        assert 0 <= row["PVN_pct"] <= 100


class TestFormatTable:
    def test_alignment_and_columns(self):
        rows = [
            {"name": "a", "value": 1.234},
            {"name": "long-name", "value": 22},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "long-name" in text

    def test_missing_keys_render_dash(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "-" in text.splitlines()[-1]

    def test_empty_rows(self):
        assert format_table([]) == ""
        assert format_table([], title="t") == "t\n"

    def test_explicit_column_order(self):
        text = format_table([{"x": 1, "y": 2}], columns=["y", "x"])
        header = text.splitlines()[0]
        assert header.index("y") < header.index("x")

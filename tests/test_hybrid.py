"""Unit tests for the McFarling combined predictors."""

import pytest

from repro.common.history import GlobalHistoryRegister
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.hybrid import (
    CombinedPredictor,
    make_baseline_hybrid,
    make_gshare_perceptron_hybrid,
)
from repro.predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor


def tiny_hybrid():
    history = GlobalHistoryRegister(8)
    a = BimodalPredictor(entries=64)
    b = GSharePredictor(entries=256, history_length=8, shared_history=history)
    return CombinedPredictor(a, b, history, meta_entries=64)


class TestChooser:
    def test_moves_to_correct_component(self):
        history = GlobalHistoryRegister(4)
        hybrid = CombinedPredictor(
            AlwaysTakenPredictor(),
            AlwaysNotTakenPredictor(),
            history,
            meta_entries=16,
        )
        pc = 0x40
        # Initial chooser (weakly B) predicts not-taken; branch is taken.
        for _ in range(3):
            hybrid.update(pc, True, hybrid.predict(pc))
        assert hybrid.predict(pc) is True
        assert hybrid.chosen_component(pc).name == "always-taken"

    def test_chooser_untouched_on_agreement(self):
        history = GlobalHistoryRegister(4)
        hybrid = CombinedPredictor(
            AlwaysTakenPredictor(),
            AlwaysTakenPredictor(),
            history,
            meta_entries=16,
        )
        before = hybrid.chosen_component(0x40)
        for _ in range(10):
            hybrid.update(0x40, False, hybrid.predict(0x40))
        assert hybrid.chosen_component(0x40) is before

    def test_per_pc_choice(self):
        history = GlobalHistoryRegister(4)
        hybrid = CombinedPredictor(
            AlwaysTakenPredictor(),
            AlwaysNotTakenPredictor(),
            history,
            meta_entries=16,
        )
        taken_pc, nt_pc = 0x40, 0x44  # distinct meta slots (pc>>2 mod 16)
        for _ in range(3):
            hybrid.update(taken_pc, True, hybrid.predict(taken_pc))
            hybrid.update(nt_pc, False, hybrid.predict(nt_pc))
        assert hybrid.predict(taken_pc) is True
        assert hybrid.predict(nt_pc) is False


class TestSharedHistory:
    def test_history_shifts_once_per_update(self):
        hybrid = tiny_hybrid()
        hybrid.update(0x40, True, hybrid.predict(0x40))
        assert hybrid.history.bits == 0b1
        hybrid.update(0x40, False, hybrid.predict(0x40))
        assert hybrid.history.bits == 0b10

    def test_components_train(self):
        hybrid = tiny_hybrid()
        pc = 0x40
        for _ in range(6):
            hybrid.update(pc, False, hybrid.predict(pc))
        assert hybrid.component_a.predict(pc) is False

    def test_reset(self):
        hybrid = tiny_hybrid()
        for _ in range(6):
            hybrid.update(0x40, False, hybrid.predict(0x40))
        hybrid.reset()
        assert hybrid.history.bits == 0
        assert hybrid.stats.predictions == 0


class TestPaperConfigurations:
    def test_baseline_hybrid_components(self):
        hybrid = make_baseline_hybrid()
        assert hybrid.name == "bimodal-gshare-hybrid"
        assert isinstance(hybrid.component_a, BimodalPredictor)
        assert isinstance(hybrid.component_b, GSharePredictor)

    def test_baseline_storage_matches_table1_scale(self):
        # 16K bimodal (4KB) + 64K gshare (16KB) + 64K meta (16KB).
        hybrid = make_baseline_hybrid()
        assert hybrid.storage_bits == (16384 + 65536 + 65536) * 2

    def test_gshare_perceptron_hybrid_learns(self, simple_trace):
        hybrid = make_gshare_perceptron_hybrid()
        for rec in simple_trace:
            hybrid.update(rec.pc, rec.taken, hybrid.predict(rec.pc))
        assert hybrid.stats.accuracy > 0.85

    def test_better_predictor_beats_baseline_on_history_workload(self):
        """The perceptron hybrid's longer history must win on a workload
        with correlations beyond gshare's reach (the Section 5.2 premise)."""
        from repro.trace.behaviors import BiasedBehavior, CorrelatedBehavior
        from repro.trace.generator import StaticBranch, TraceGenerator, WorkloadSpec

        spec = WorkloadSpec(name="far", block_size=1, block_repeat_mean=1.0)
        pc = 0x400000
        for i in range(6):
            spec.add(StaticBranch(pc=pc, behavior=BiasedBehavior(0.5)))
            pc += 52
        spec.add(
            StaticBranch(
                pc=pc,
                behavior=CorrelatedBehavior((15,), noise=0.0),
                weight=3.0,
            )
        )
        trace = TraceGenerator(spec, seed=5).generate(20_000)
        base = make_baseline_hybrid()  # 10-bit gshare history
        better = make_gshare_perceptron_hybrid(perceptron_history=24)
        for rec in trace:
            base.update(rec.pc, rec.taken, base.predict(rec.pc))
            better.update(rec.pc, rec.taken, better.predict(rec.pc))
        assert better.stats.accuracy > base.stats.accuracy

"""Integration tests: cross-module scenarios reproducing paper claims.

These run small versions of the paper's headline comparisons so the
full pipeline (trace -> predictor -> estimator -> policy -> timing
model) is exercised end to end.
"""

import pytest

from repro.core.estimator import AlwaysHighEstimator
from repro.core.frontend import FrontEnd
from repro.core.jrs import JRSEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.reversal import GatingOnlyPolicy, ThreeRegionPolicy
from repro.pipeline.config import BASELINE_40X4, STANDARD_20X4, WIDE_20X8
from repro.pipeline.runner import compare_policies, run_machine
from repro.predictors.hybrid import make_baseline_hybrid


WARM = 5_000


class TestPaperClaimShapes:
    """Each test pins one qualitative claim from the paper."""

    def test_perceptron_more_accurate_than_jrs(self, gzip_trace):
        """Headline: perceptron PVN is a multiple of JRS PVN (Table 3)."""
        jrs = FrontEnd(make_baseline_hybrid(), JRSEstimator(threshold=7)).replay(
            gzip_trace, warmup=WARM
        )
        perc = FrontEnd(
            make_baseline_hybrid(), PerceptronConfidenceEstimator(threshold=0)
        ).replay(gzip_trace, warmup=WARM)
        assert perc.metrics.overall.pvn > 1.5 * jrs.metrics.overall.pvn

    def test_jrs_has_higher_coverage(self, gzip_trace):
        """JRS trades accuracy for coverage (Table 3)."""
        jrs = FrontEnd(make_baseline_hybrid(), JRSEstimator(threshold=7)).replay(
            gzip_trace, warmup=WARM
        )
        perc = FrontEnd(
            make_baseline_hybrid(), PerceptronConfidenceEstimator(threshold=0)
        ).replay(gzip_trace, warmup=WARM)
        assert jrs.metrics.overall.spec > perc.metrics.overall.spec

    def test_perceptron_threshold_tradeoff(self, gzip_trace):
        """Lowering lambda buys coverage and costs accuracy (Table 3)."""
        tight = FrontEnd(
            make_baseline_hybrid(), PerceptronConfidenceEstimator(threshold=25)
        ).replay(gzip_trace, warmup=WARM)
        loose = FrontEnd(
            make_baseline_hybrid(), PerceptronConfidenceEstimator(threshold=-50)
        ).replay(gzip_trace, warmup=WARM)
        assert loose.metrics.overall.spec > tight.metrics.overall.spec

    def test_deep_pipe_wastes_more_than_shallow(self, gzip_trace):
        """Table 2: 40c/4w wastes roughly double the 20c/4w machine."""
        predictor = make_baseline_hybrid()
        frontend = FrontEnd(predictor, AlwaysHighEstimator())
        events = [frontend.process(r) for r in gzip_trace]
        from repro.pipeline.simulator import PipelineSimulator

        deep = PipelineSimulator(BASELINE_40X4).simulate(iter(events))
        shallow = PipelineSimulator(STANDARD_20X4).simulate(iter(events))
        assert deep.wrong_path_increase > 1.4 * shallow.wrong_path_increase

    def test_gating_reduces_total_execution(self, gzip_trace):
        """Table 4: perceptron gating cuts uops executed."""
        run = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: PerceptronConfidenceEstimator(threshold=0),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1),
            warmup=WARM,
        )
        assert run.uop_reduction_pct > 2.0

    def test_perceptron_gating_dominates_jrs_frontier(self, gzip_trace):
        """Table 4: at comparable U, the perceptron loses far less
        performance than JRS at PL1."""
        perc = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: PerceptronConfidenceEstimator(threshold=0),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1),
            warmup=WARM,
        )
        jrs = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: JRSEstimator(threshold=7),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1),
            warmup=WARM,
        )
        assert jrs.performance_loss_pct > 2 * perc.performance_loss_pct

    def test_higher_pl_softens_jrs(self, gzip_trace):
        """Table 4: raising the branch-counter threshold reduces both
        JRS's uop savings and its performance loss."""
        pl1 = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: JRSEstimator(threshold=7),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1),
            warmup=WARM,
        )
        pl3 = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: JRSEstimator(threshold=7),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(3),
            warmup=WARM,
        )
        assert pl3.uop_reduction_pct < pl1.uop_reduction_pct
        assert pl3.performance_loss_pct < pl1.performance_loss_pct

    def test_estimator_latency_minor(self, gzip_trace):
        """Section 5.4.2: 9-cycle estimator latency costs little U."""
        fast = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: PerceptronConfidenceEstimator(threshold=0),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1, estimator_latency=1),
            warmup=WARM,
        )
        slow = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: PerceptronConfidenceEstimator(threshold=0),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1, estimator_latency=9),
            warmup=WARM,
        )
        assert slow.uop_reduction_pct > 0.5 * fast.uop_reduction_pct

    def test_tnt_training_is_worse(self, gcc_trace):
        """Section 5.3: at matched coverage, cic accuracy beats tnt."""
        cic = FrontEnd(
            make_baseline_hybrid(),
            PerceptronConfidenceEstimator(threshold=0, mode="cic"),
        ).replay(gcc_trace, warmup=WARM)
        cic_m = cic.metrics.overall

        # Find a tnt threshold with at least cic's coverage.
        tnt_m = None
        for thr in (10, 30, 60, 120, 240):
            tnt = FrontEnd(
                make_baseline_hybrid(),
                PerceptronConfidenceEstimator(threshold=thr, mode="tnt"),
            ).replay(gcc_trace, warmup=WARM)
            tnt_m = tnt.metrics.overall
            if tnt_m.spec >= cic_m.spec:
                break
        assert tnt_m is not None
        assert cic_m.pvn > tnt_m.pvn

    def test_three_region_policy_executes_all_actions(self, gzip_trace):
        """Section 5.5 machinery: reversal and gating both engage."""
        run = run_machine(
            gzip_trace,
            make_baseline_hybrid(),
            PerceptronConfidenceEstimator(threshold=-90, strong_threshold=40),
            ThreeRegionPolicy(),
            BASELINE_40X4.with_gating(2),
            warmup=WARM,
        )
        assert run.stats.reversals > 0
        assert run.stats.gated_branches > 0

    def test_wide_machine_also_benefits(self, gzip_trace):
        """Figure 9 premise: gating cuts execution on the 20c/8w machine
        too (reversal needs longer traces to train, so the short-trace
        check uses gating alone)."""
        run = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: PerceptronConfidenceEstimator(threshold=-25),
            GatingOnlyPolicy(),
            WIDE_20X8.with_gating(1),
            warmup=WARM,
        )
        assert run.uop_reduction_pct > 0

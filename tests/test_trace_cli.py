"""Unit tests for the trace CLI."""

import pytest

from repro.trace.cli import main
from repro.trace.io import load_trace


class TestGenerate:
    def test_generate_and_inspect(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        assert main(["generate", "gzip", out, "--branches", "2000"]) == 0
        assert "2000 branches" in capsys.readouterr().out
        trace = load_trace(out)
        assert len(trace) == 2000
        assert trace.name == "gzip"

        assert main(["inspect", out, "--top", "3"]) == 0
        text = capsys.readouterr().out
        assert "dynamic branches: 2000" in text
        assert "hottest 3 static branches" in text

    def test_generate_seed_changes_output(self, tmp_path):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        main(["generate", "gcc", a, "--branches", "500", "--seed", "1"])
        main(["generate", "gcc", b, "--branches", "500", "--seed", "2"])
        ta, tb = load_trace(a), load_trace(b)
        assert [r.taken for r in ta] != [r.taken for r in tb]

    def test_unknown_benchmark_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nonesuch", str(tmp_path / "x.npz")])


class TestConvert:
    def test_roundtrip_formats(self, tmp_path, capsys):
        npz = str(tmp_path / "t.npz")
        text = str(tmp_path / "t.btrace")
        main(["generate", "bzip", npz, "--branches", "300"])
        assert main(["convert", npz, text]) == 0
        assert "300 branches" in capsys.readouterr().out
        original, converted = load_trace(npz), load_trace(text)
        assert [(r.pc, r.taken) for r in original] == [
            (r.pc, r.taken) for r in converted
        ]


class TestList:
    def test_lists_all_profiles(self, capsys):
        assert main(["list"]) == 0
        text = capsys.readouterr().out
        for name in ("gzip", "mcf", "vortex", "twolf"):
            assert name in text

"""Unit tests for gating machinery and speculation policies."""

import pytest

from repro.core.gating import GatingConfig, LowConfidenceCounter
from repro.core.reversal import (
    BranchAction,
    GatingOnlyPolicy,
    NoSpeculationControl,
    ThreeRegionPolicy,
)
from repro.core.types import ConfidenceSignal


class TestGatingConfig:
    def test_defaults(self):
        cfg = GatingConfig()
        assert cfg.branch_counter_threshold == 1
        assert cfg.estimator_latency == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            GatingConfig(branch_counter_threshold=0)
        with pytest.raises(ValueError):
            GatingConfig(estimator_latency=-1)


class TestLowConfidenceCounter:
    def test_figure1_protocol(self):
        counter = LowConfidenceCounter(threshold=2)
        counter.on_fetch(True)
        assert not counter.should_gate()
        counter.on_fetch(True)
        assert counter.should_gate()
        counter.on_resolve(True)
        assert not counter.should_gate()

    def test_high_confidence_branches_ignored(self):
        counter = LowConfidenceCounter(threshold=1)
        counter.on_fetch(False)
        assert counter.count == 0
        counter.on_resolve(False)
        assert counter.count == 0

    def test_underflow_detected(self):
        counter = LowConfidenceCounter(threshold=1)
        with pytest.raises(RuntimeError):
            counter.on_resolve(True)

    def test_flush(self):
        counter = LowConfidenceCounter(threshold=1)
        counter.on_fetch(True)
        counter.flush()
        assert counter.count == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            LowConfidenceCounter(threshold=0)


class TestPolicies:
    def test_no_control(self):
        policy = NoSpeculationControl()
        d = policy.decide(ConfidenceSignal.strong_low(100.0), True)
        assert d.action is BranchAction.NORMAL
        assert d.final_prediction is True
        assert not d.counts_toward_gating

    def test_gating_only(self):
        policy = GatingOnlyPolicy()
        low = policy.decide(ConfidenceSignal.weak_low(5.0), False)
        assert low.action is BranchAction.GATE
        assert low.final_prediction is False
        assert low.counts_toward_gating
        high = policy.decide(ConfidenceSignal.high(-50.0), True)
        assert high.action is BranchAction.NORMAL

    def test_gating_only_gates_strong_too(self):
        policy = GatingOnlyPolicy()
        d = policy.decide(ConfidenceSignal.strong_low(100.0), True)
        assert d.action is BranchAction.GATE

    def test_three_region(self):
        policy = ThreeRegionPolicy()
        strong = policy.decide(ConfidenceSignal.strong_low(100.0), True)
        assert strong.action is BranchAction.REVERSE
        assert strong.final_prediction is False  # inverted
        assert not strong.counts_toward_gating
        weak = policy.decide(ConfidenceSignal.weak_low(-20.0), True)
        assert weak.action is BranchAction.GATE
        assert weak.final_prediction is True
        high = policy.decide(ConfidenceSignal.high(-200.0), False)
        assert high.action is BranchAction.NORMAL
        assert high.final_prediction is False

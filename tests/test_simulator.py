"""Unit tests for the pipeline timing model."""

import pytest

from repro.core.frontend import FrontEndEvent
from repro.core.reversal import BranchAction, PolicyDecision
from repro.core.types import ConfidenceSignal
from repro.pipeline.config import PipelineConfig
from repro.pipeline.simulator import PipelineSimulator


def event(pc=0x40, taken=True, prediction=True, action=BranchAction.NORMAL,
          final=None, uops_before=7, low=False, raw=0.0):
    signal = ConfidenceSignal.weak_low(raw) if low else ConfidenceSignal.high(raw)
    final_prediction = prediction if final is None else final
    if action is BranchAction.REVERSE:
        final_prediction = not prediction
    return FrontEndEvent(
        pc=pc,
        taken=taken,
        prediction=prediction,
        final_prediction=final_prediction,
        signal=signal,
        decision=PolicyDecision(action, final_prediction),
        uops_before=uops_before,
    )


def correct_event(**kw):
    return event(taken=True, prediction=True, **kw)


def mispredicted_event(**kw):
    return event(taken=False, prediction=True, **kw)


def config(**kw):
    defaults = dict(
        fetch_width=4, depth=20, rob_size=128,
        base_uop_cycles=1.0, resolve_jitter=0,
        estimator_latency=1, gating_threshold=1,
    )
    defaults.update(kw)
    return PipelineConfig(**defaults)


class TestBaseline:
    def test_all_correct_runs_at_backend_rate(self):
        sim = PipelineSimulator(config())
        stats = sim.simulate([correct_event() for _ in range(500)])
        assert stats.mispredictions == 0
        assert stats.wrong_path_uops == 0
        # 500 groups x 8 uops at 1 uop/cycle, plus pipeline fill.
        assert stats.total_cycles == pytest.approx(4000, rel=0.05)
        assert stats.uops_per_cycle == pytest.approx(1.0, rel=0.05)

    def test_deterministic(self):
        events = [correct_event() for _ in range(100)]
        a = PipelineSimulator(config()).simulate(iter(events))
        b = PipelineSimulator(config()).simulate(iter(events))
        assert a.total_cycles == b.total_cycles
        assert a.total_uops_executed == b.total_uops_executed

    def test_simulate_resets_state(self):
        sim = PipelineSimulator(config())
        first = sim.simulate([correct_event() for _ in range(50)])
        second = sim.simulate([correct_event() for _ in range(50)])
        assert first.total_cycles == second.total_cycles


class TestMisprediction:
    def test_wrong_path_uops_accounted(self):
        sim = PipelineSimulator(config())
        events = [correct_event() for _ in range(50)]
        events.append(mispredicted_event())
        events += [correct_event() for _ in range(50)]
        stats = sim.simulate(events)
        assert stats.mispredictions == 1
        # Window: depth 20 cycles x width 4 = 80 uops (< cap 128).
        assert 40 <= stats.wrong_path_uops <= 80

    def test_wrong_path_capped_by_window(self):
        sim = PipelineSimulator(config(depth=60, rob_size=100))
        events = [correct_event() for _ in range(30)]
        events.append(mispredicted_event())
        stats = sim.simulate(events)
        assert stats.wrong_path_uops <= 100

    def test_misprediction_costs_cycles_when_window_thin(self):
        # Right after a flush the window is empty, so a clustered second
        # misprediction's refill is visible in the retire stream.
        clean = [correct_event() for _ in range(40)]
        dirty = list(clean)
        dirty[2] = mispredicted_event()
        dirty[4] = mispredicted_event()
        base = PipelineSimulator(config()).simulate(iter(clean))
        hit = PipelineSimulator(config()).simulate(iter(dirty))
        penalty = hit.total_cycles - base.total_cycles
        assert penalty >= 10

    def test_isolated_misprediction_hidden_by_full_backlog(self):
        # In a fully backend-bound phase the window backlog covers the
        # refill: an isolated misprediction costs almost nothing (the
        # classic low-IPC hiding effect; wasted *uops* are still paid).
        clean = [correct_event() for _ in range(400)]
        dirty = list(clean)
        dirty[200] = mispredicted_event()
        base = PipelineSimulator(config()).simulate(iter(clean))
        hit = PipelineSimulator(config()).simulate(iter(dirty))
        penalty = hit.total_cycles - base.total_cycles
        assert penalty < 10
        assert hit.wrong_path_uops > 0

    def test_deeper_pipe_wastes_more(self):
        events = [correct_event() for _ in range(20)]
        events.append(mispredicted_event())
        shallow = PipelineSimulator(config(depth=10)).simulate(iter(events))
        deep = PipelineSimulator(config(depth=30)).simulate(iter(events))
        assert deep.wrong_path_uops > shallow.wrong_path_uops

    def test_wider_machine_wastes_more(self):
        events = [correct_event() for _ in range(20)]
        events.append(mispredicted_event())
        narrow = PipelineSimulator(config(fetch_width=4)).simulate(iter(events))
        wide = PipelineSimulator(config(fetch_width=8)).simulate(iter(events))
        assert wide.wrong_path_uops > narrow.wrong_path_uops

    def test_raw_vs_final_mispredictions(self):
        # A correcting reversal removes the episode entirely.
        sim = PipelineSimulator(config())
        events = [correct_event() for _ in range(10)]
        events.append(
            event(taken=False, prediction=True, action=BranchAction.REVERSE)
        )
        stats = sim.simulate(events)
        assert stats.raw_mispredictions == 1
        assert stats.mispredictions == 0
        assert stats.wrong_path_uops == 0
        assert stats.reversals_correcting == 1

    def test_breaking_reversal_creates_episode(self):
        sim = PipelineSimulator(config())
        events = [correct_event() for _ in range(10)]
        events.append(
            event(taken=True, prediction=True, action=BranchAction.REVERSE)
        )
        stats = sim.simulate(events)
        assert stats.raw_mispredictions == 0
        assert stats.mispredictions == 1
        assert stats.reversals_breaking == 1
        assert stats.wrong_path_uops > 0


class TestGating:
    def test_gating_cuts_wrong_path(self):
        # A mispredicted branch flagged low confidence: wrong-path fetch
        # must stop once the estimate activates.
        cfg = config(estimator_latency=2)
        gated = [correct_event() for _ in range(30)]
        gated.append(mispredicted_event(action=BranchAction.GATE, low=True))
        ungated = [correct_event() for _ in range(30)]
        ungated.append(mispredicted_event())
        g = PipelineSimulator(cfg).simulate(iter(gated))
        u = PipelineSimulator(cfg).simulate(iter(ungated))
        assert g.wrong_path_uops < u.wrong_path_uops / 2
        assert g.wrong_path_uops_saved > 0

    def test_latency_admits_more_wrong_path(self):
        def run(latency):
            cfg = config(estimator_latency=latency)
            events = [correct_event() for _ in range(30)]
            events.append(mispredicted_event(action=BranchAction.GATE, low=True))
            return PipelineSimulator(cfg).simulate(iter(events))

        assert run(9).wrong_path_uops > run(1).wrong_path_uops

    def test_false_flag_stall_absorbed_when_window_full(self):
        # Steady stream with a full window: a single gated (but correct)
        # branch must cost almost nothing -- the backlog hides it.
        base_events = [correct_event() for _ in range(400)]
        gated_events = list(base_events)
        gated_events[200] = correct_event(action=BranchAction.GATE, low=True)
        base = PipelineSimulator(config()).simulate(iter(base_events))
        gated = PipelineSimulator(config()).simulate(iter(gated_events))
        loss = (gated.total_cycles - base.total_cycles) / base.total_cycles
        assert loss < 0.01
        assert gated.gated_cycles > 0

    def test_gating_threshold_requires_multiple(self):
        # PL2: one low-confidence branch in flight must not stall fetch.
        cfg = config(gating_threshold=2)
        events = [correct_event() for _ in range(50)]
        events.append(correct_event(action=BranchAction.GATE, low=True))
        events += [correct_event() for _ in range(50)]
        stats = PipelineSimulator(cfg).simulate(iter(events))
        assert stats.gated_cycles == 0

    def test_back_to_back_low_confidence_triggers_pl2(self):
        cfg = config(gating_threshold=2)
        events = [correct_event() for _ in range(50)]
        events.append(correct_event(action=BranchAction.GATE, low=True, uops_before=0))
        events.append(correct_event(action=BranchAction.GATE, low=True, uops_before=0))
        events += [correct_event(uops_before=0) for _ in range(20)]
        stats = PipelineSimulator(cfg).simulate(iter(events))
        assert stats.gated_cycles > 0

    def test_gated_branch_counter(self):
        events = [correct_event(action=BranchAction.GATE, low=True)
                  for _ in range(5)]
        stats = PipelineSimulator(config()).simulate(iter(events))
        assert stats.gated_branches == 5


class TestStats:
    def test_table2_metric(self):
        events = [correct_event() for _ in range(100)]
        events.append(mispredicted_event())
        stats = PipelineSimulator(config()).simulate(iter(events))
        expected = 100.0 * stats.wrong_path_uops / stats.correct_path_uops
        assert stats.wrong_path_increase == pytest.approx(expected)

    def test_mispredicts_per_kuop(self):
        events = [correct_event() for _ in range(124)]
        events.append(mispredicted_event())
        stats = PipelineSimulator(config()).simulate(iter(events))
        assert stats.mispredicts_per_kuop == pytest.approx(1.0, rel=0.01)

    def test_as_dict_keys(self):
        stats = PipelineSimulator(config()).simulate(
            [correct_event() for _ in range(10)]
        )
        d = stats.as_dict()
        for key in ("branches", "total_uops_executed", "total_cycles"):
            assert key in d


class TestThrottleMode:
    def test_throttle_config_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            config(gating_mode="bogus")
        with _pytest.raises(ValueError):
            config(gating_mode="throttle", throttle_factor=1.0)

    def test_throttle_keeps_fetch_flowing(self):
        # A gated-but-correct stretch: throttle charges throttled cycles
        # and never full stalls.
        cfg = config(gating_mode="throttle", throttle_factor=0.5)
        events = [correct_event() for _ in range(30)]
        events.append(correct_event(action=BranchAction.GATE, low=True))
        events += [correct_event() for _ in range(30)]
        stats = PipelineSimulator(cfg).simulate(iter(events))
        assert stats.gated_cycles == 0
        assert stats.throttled_cycles > 0

    def test_throttle_saves_less_wrong_path_than_stall(self):
        def run(mode):
            cfg = config(gating_mode=mode, throttle_factor=0.5)
            events = [correct_event() for _ in range(30)]
            events.append(
                mispredicted_event(action=BranchAction.GATE, low=True)
            )
            return PipelineSimulator(cfg).simulate(iter(events))

        stall = run("stall")
        throttle = run("throttle")
        assert throttle.wrong_path_uops > stall.wrong_path_uops
        assert throttle.wrong_path_uops_saved < stall.wrong_path_uops_saved

    def test_throttle_cheaper_on_false_flags(self):
        # Dense false flags: the stall machine pays, the throttle
        # machine mostly keeps up.
        def run(mode):
            cfg = config(gating_mode=mode, throttle_factor=0.5)
            events = []
            for i in range(300):
                gated = i % 4 == 0
                events.append(
                    correct_event(
                        action=BranchAction.GATE if gated else BranchAction.NORMAL,
                        low=gated,
                    )
                )
            return PipelineSimulator(cfg).simulate(iter(events))

        stall = run("stall")
        throttle = run("throttle")
        assert throttle.total_cycles <= stall.total_cycles

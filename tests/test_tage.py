"""TAGE-class baseline predictor: unit, property and backend tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.specs import PredictorSpec
from repro.predictors.tage import TagePredictor, geometric_history_lengths
from repro.trace.benchmarks import generate_benchmark_trace
from repro.verify.matrix import specs_for_predictor_kind


def small_tage() -> TagePredictor:
    return TagePredictor(
        base_entries=64,
        tagged_entries=32,
        n_tables=3,
        tag_bits=7,
        min_history=4,
        max_history=20,
    )


class TestGeometry:
    def test_lengths_strictly_increasing(self):
        lengths = geometric_history_lengths(6, 5, 80)
        assert lengths == tuple(sorted(set(lengths)))
        assert lengths[0] == 5
        assert lengths[-1] == 80

    def test_single_table(self):
        assert geometric_history_lengths(1, 5, 40) == (5,)

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=20, max_value=120),
    )
    def test_lengths_bounded_and_distinct(self, n, lo, hi):
        lengths = geometric_history_lengths(n, lo, hi)
        assert len(lengths) == n
        assert len(set(lengths)) == n
        assert lengths[0] == lo
        assert all(a < b for a, b in zip(lengths, lengths[1:]))

    def test_registered_kind_builds(self):
        predictor = PredictorSpec.of("tage").build()
        assert isinstance(predictor, TagePredictor)
        assert predictor.storage_bits > 0


class TestPredictContract:
    def test_predict_is_pure(self):
        p = small_tage()
        for pc in (0x400000, 0x400040, 0x400080):
            before = p.state_canonical()
            p.predict(pc)
            p.predict(pc)
            assert p.state_canonical() == before

    def test_update_trains_toward_outcome(self):
        p = small_tage()
        pc = 0x400100
        for _ in range(64):
            p.update(pc, True, p.predict(pc))
        assert p.predict(pc) is True

    def test_confidence_hint_bounded(self):
        p = small_tage()
        pcs = [0x400000 + 4 * i for i in range(16)]
        for step in range(200):
            pc = pcs[step % len(pcs)]
            taken = (step // 3) % 2 == 0
            assert 0.0 <= p.confidence_hint(pc) <= 1.0
            p.update(pc, taken, p.predict(pc))


class TestCheckpointRestore:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=20, deadline=None)
    def test_mid_trace_checkpoint_equals_uninterrupted(self, seed, cut):
        trace = generate_benchmark_trace("mcf", n_branches=500, seed=seed % 7)
        cut = cut % len(trace)

        uninterrupted = small_tage()
        for r in trace:
            uninterrupted.update(r.pc, r.taken, uninterrupted.predict(r.pc))

        first = small_tage()
        for r in trace[:cut]:
            first.update(r.pc, r.taken, first.predict(r.pc))
        resumed = small_tage()
        resumed.restore(first.checkpoint())
        assert resumed.state_digest() == first.state_digest()
        for r in trace[cut:]:
            resumed.update(r.pc, r.taken, resumed.predict(r.pc))

        assert resumed.state_digest() == uninterrupted.state_digest()
        assert resumed.state_canonical() == uninterrupted.state_canonical()

    def test_restore_rejects_wrong_tag(self):
        p = small_tage()
        with pytest.raises(ValueError):
            p.restore(("gshare", (1, 2, 3)))

    def test_restore_rejects_wrong_geometry(self):
        a = small_tage()
        b = TagePredictor(
            base_entries=64,
            tagged_entries=32,
            n_tables=4,
            tag_bits=7,
            min_history=4,
            max_history=20,
        )
        with pytest.raises(ValueError):
            a.restore(b.checkpoint())

    def test_state_canonical_is_nested_ints(self):
        p = small_tage()
        trace = generate_benchmark_trace("gzip", n_branches=200, seed=3)
        for r in trace:
            p.update(r.pc, r.taken, p.predict(r.pc))

        def only_ints(node):
            if isinstance(node, tuple):
                return all(only_ints(x) for x in node)
            return isinstance(node, (int, str))

        assert only_ints(p.state_canonical())


class TestVerificationCoverage:
    def test_matrix_covers_tage(self):
        hits = specs_for_predictor_kind("tage")
        assert any(label == "tage-perceptron-cic" for label, _ in hits)

    def test_fastpath_supports_default_tage(self):
        from repro.engine.specs import GATING_POLICY, EstimatorSpec
        from repro.experiments.common import ExperimentSettings, job_for
        from repro.fastpath.driver import unsupported_reason

        def reason(predictor):
            job = job_for(
                ExperimentSettings(n_branches=2000, warmup=500),
                "gzip",
                EstimatorSpec.of("perceptron", threshold=0),
                policy=GATING_POLICY,
                predictor=predictor,
            )
            return unsupported_reason(job)

        assert reason(PredictorSpec.of("tage")) is None
        # Histories past the 64-bit checkpoint window must fall back.
        assert (
            reason(PredictorSpec.of("tage", max_history=80))
            == "predictor:tage"
        )
        # Non-power-of-two tagged tables break the fold-based indexing.
        assert (
            reason(PredictorSpec.of("tage", tagged_entries=1000))
            == "predictor:tage"
        )

    def test_backends_agree_on_metrics(self):
        # The fast tage pass must be bit-identical to the reference, so
        # both backends must produce byte-identical metrics.
        from repro.engine import Engine
        from repro.engine.specs import GATING_POLICY, EstimatorSpec
        from repro.experiments.common import ExperimentSettings, job_for

        def metrics(backend):
            settings = ExperimentSettings(
                n_branches=3000, warmup=1000, backend=backend
            )
            job = job_for(
                settings,
                "mcf",
                EstimatorSpec.of("perceptron", threshold=0),
                policy=GATING_POLICY,
                predictor=PredictorSpec.of("tage"),
            )
            matrix = Engine().replay(job).result.metrics.overall
            return (matrix.total, matrix.flagged_low, matrix.pvn, matrix.spec,
                    matrix.misprediction_rate)

        assert metrics("reference") == metrics("fast")

"""Unit tests for repro.trace.benchmarks (profiles and calibration)."""

import pytest

from repro.trace.behaviors import HiddenCorrelationBehavior, LoopBehavior
from repro.trace.benchmarks import (
    BENCHMARK_NAMES,
    TABLE2_MISPREDICTS_PER_KUOP,
    benchmark_profile,
    build_workload,
    generate_benchmark_trace,
)


class TestProfiles:
    def test_all_twelve_registered(self):
        assert len(BENCHMARK_NAMES) == 12
        for name in BENCHMARK_NAMES:
            assert benchmark_profile(name).name == name

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark_profile("nonesuch")

    def test_weights_sum_to_one(self):
        for name in BENCHMARK_NAMES:
            total = sum(benchmark_profile(name).class_weights.values())
            assert total == pytest.approx(1.0, abs=2e-3)

    def test_targets_match_table2(self):
        assert benchmark_profile("mcf").mispredict_target_per_kuop == 16.0
        assert benchmark_profile("vortex").mispredict_target_per_kuop == 0.2

    def test_far_taps_within_estimator_history(self):
        for name in BENCHMARK_NAMES:
            for tap in benchmark_profile(name).hidden_far_taps:
                assert 10 < tap < 32  # beyond gshare, within CE history

    def test_far_taps_avoid_block_periodicity(self):
        for name in BENCHMARK_NAMES:
            for tap in benchmark_profile(name).hidden_far_taps:
                assert tap % 3 != 0


class TestBuildWorkload:
    def test_unique_pcs(self):
        spec = build_workload(benchmark_profile("gzip"), seed=1)
        pcs = [b.pc for b in spec.branches]
        assert len(pcs) == len(set(pcs))

    def test_pcs_are_aligned(self):
        spec = build_workload(benchmark_profile("gcc"), seed=1)
        assert all(b.pc % 4 == 0 for b in spec.branches)

    def test_class_population_sizes(self):
        profile = benchmark_profile("gzip")
        spec = build_workload(profile, seed=1)
        assert spec.static_count == sum(
            count
            for cls, count in profile.static_counts.items()
            if profile.class_weights.get(cls, 0) > 0
        )

    def test_contains_fixed_and_variable_loops(self):
        spec = build_workload(benchmark_profile("gzip"), seed=1)
        loops = [b.behavior for b in spec.branches if isinstance(b.behavior, LoopBehavior)]
        fixed = [l for l in loops if l.min_trips == l.max_trips]
        variable = [l for l in loops if l.min_trips != l.max_trips]
        assert fixed and variable

    def test_hidden_branches_use_far_taps(self):
        profile = benchmark_profile("twolf")
        spec = build_workload(profile, seed=1)
        hidden = [
            b.behavior
            for b in spec.branches
            if isinstance(b.behavior, HiddenCorrelationBehavior)
        ]
        assert hidden
        assert all(h.far_tap in profile.hidden_far_taps for h in hidden)

    def test_deterministic_given_seed(self):
        a = build_workload(benchmark_profile("vpr"), seed=4)
        b = build_workload(benchmark_profile("vpr"), seed=4)
        assert [s.pc for s in a.branches] == [s.pc for s in b.branches]
        assert [s.weight for s in a.branches] == [s.weight for s in b.branches]


class TestGenerateBenchmarkTrace:
    def test_deterministic(self):
        a = generate_benchmark_trace("gcc", n_branches=2000, seed=3)
        b = generate_benchmark_trace("gcc", n_branches=2000, seed=3)
        assert [(r.pc, r.taken) for r in a] == [(r.pc, r.taken) for r in b]

    def test_metadata(self):
        trace = generate_benchmark_trace("bzip", n_branches=1000, seed=3)
        assert trace.name == "bzip"
        assert len(trace) == 1000

    def test_branch_density_tracks_profile(self):
        eon = generate_benchmark_trace("eon", n_branches=4000, seed=1)
        mcf = generate_benchmark_trace("mcf", n_branches=4000, seed=1)
        # eon is configured with lower branch density (10 uops/branch).
        assert eon.stats().branches_per_kuop < mcf.stats().branches_per_kuop


class TestCalibration:
    """Misprediction-rate calibration against Table 2 (slower tests)."""

    @pytest.mark.parametrize("name", ["gzip", "gcc", "mcf", "vortex"])
    def test_misprediction_band(self, name):
        from repro.core.estimator import AlwaysHighEstimator
        from repro.core.frontend import FrontEnd
        from repro.predictors.hybrid import make_baseline_hybrid

        trace = generate_benchmark_trace(name, n_branches=40_000, seed=1)
        frontend = FrontEnd(make_baseline_hybrid(), AlwaysHighEstimator())
        result = frontend.replay(trace, warmup=14_000)
        uops = sum(r.uops for r in trace.records[14_000:])
        per_kuop = 1000.0 * result.mispredictions / uops
        target = TABLE2_MISPREDICTS_PER_KUOP[name]
        assert target * 0.5 <= per_kuop <= target * 2.0

    def test_predictability_ordering(self):
        """mcf must be by far the worst; vortex the best (paper order)."""
        from repro.core.estimator import AlwaysHighEstimator
        from repro.core.frontend import FrontEnd
        from repro.predictors.hybrid import make_baseline_hybrid

        rates = {}
        for name in ("mcf", "gzip", "vortex"):
            trace = generate_benchmark_trace(name, n_branches=25_000, seed=1)
            frontend = FrontEnd(make_baseline_hybrid(), AlwaysHighEstimator())
            result = frontend.replay(trace, warmup=9_000)
            rates[name] = result.misprediction_rate
        assert rates["mcf"] > rates["gzip"] > rates["vortex"]

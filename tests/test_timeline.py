"""Unit tests for windowed metric timelines and the warm-up curve."""

import pytest

from repro.analysis.timeline import MetricTimeline


class TestMetricTimeline:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            MetricTimeline(window_size=0)

    def test_windows_fill_in_order(self):
        t = MetricTimeline(window_size=3)
        for i in range(7):
            t.record(low_confidence=False, mispredicted=False)
        points = t.points(complete_only=False)
        assert [p.window_index for p in points] == [0, 1, 2]
        assert points[0].matrix.total == 3
        assert points[2].matrix.total == 1

    def test_complete_only_drops_partial_tail(self):
        t = MetricTimeline(window_size=4)
        for _ in range(10):
            t.record(False, False)
        assert len(t.points()) == 2
        assert len(t.points(complete_only=False)) == 3

    def test_metrics_split_by_window(self):
        t = MetricTimeline(window_size=2)
        # Window 0: both mispredicted and flagged (PVN 1.0).
        t.record(True, True)
        t.record(True, True)
        # Window 1: flags on correct branches (PVN 0.0).
        t.record(True, False)
        t.record(True, False)
        trend = t.trend("pvn")
        assert trend == [1.0, 0.0]

    def test_trend_validation(self):
        with pytest.raises(ValueError):
            MetricTimeline().trend("bogus")

    def test_improvement(self):
        t = MetricTimeline(window_size=2)
        t.record(True, False)
        t.record(True, False)
        t.record(True, True)
        t.record(True, True)
        assert t.improvement("pvn") == pytest.approx(1.0)

    def test_improvement_needs_two_windows(self):
        t = MetricTimeline(window_size=10)
        t.record(True, True)
        assert t.improvement() is None

    def test_start_branch(self):
        t = MetricTimeline(window_size=5)
        for _ in range(10):
            t.record(False, False)
        points = t.points()
        assert [p.start_branch for p in points] == [0, 5]

    def test_as_dict(self):
        t = MetricTimeline(window_size=1)
        t.record(True, True)
        d = t.points()[0].as_dict()
        assert d["PVN %"] == 100.0


class TestWarmupCurveExperiment:
    def test_structure(self):
        from repro.experiments import warmup_curve
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(
            n_branches=12_000, warmup=1_000, benchmarks=("gzip",)
        )
        result = warmup_curve.run(settings, benchmark="gzip", windows=4)
        assert len(result.points) == 4
        assert result.window_size == 3_000
        assert "Warm-up curve" in result.format()

    def test_estimator_accuracy_improves_from_cold(self):
        from repro.experiments import warmup_curve
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(
            n_branches=30_000, warmup=1_000, benchmarks=("gzip",)
        )
        result = warmup_curve.run(settings, benchmark="gzip", windows=5)
        # The key reproduction caveat: quality rises with training.
        assert result.pvn_improvement > 0

    def test_windows_validation(self):
        from repro.experiments import warmup_curve
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(
            n_branches=6_000, warmup=1_000, benchmarks=("gzip",)
        )
        with pytest.raises(ValueError):
            warmup_curve.run(settings, windows=1)

"""Unit tests for the energy model (extension)."""

import pytest

from repro.pipeline.energy import EnergyModel, EnergyReport
from repro.pipeline.stats import SimStats


def stats(correct=1000, wrong=200, branches=125, cycles=500.0):
    s = SimStats()
    s.correct_path_uops = correct
    s.wrong_path_uops = wrong
    s.branches = branches
    s.total_cycles = cycles
    return s


class TestEnergyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(dynamic_per_uop=-1)
        with pytest.raises(ValueError):
            EnergyModel(static_per_cycle=-0.1)

    def test_evaluate_components(self):
        model = EnergyModel(
            dynamic_per_uop=2.0, estimator_per_branch=0.5, static_per_cycle=1.0
        )
        report = model.evaluate(stats())
        assert report.dynamic == 2.0 * 1200
        assert report.estimator == 0.5 * 125
        assert report.static == 500.0
        assert report.total == report.dynamic + report.estimator + report.static

    def test_estimator_energy_optional(self):
        model = EnergyModel()
        active = model.evaluate(stats(), estimator_active=True)
        inactive = model.evaluate(stats(), estimator_active=False)
        assert inactive.estimator == 0.0
        assert active.total > inactive.total


class TestEnergyReport:
    def test_edp(self):
        report = EnergyReport(dynamic=100, estimator=0, static=50, cycles=10)
        assert report.energy_delay_product == 150 * 10

    def test_savings(self):
        base = EnergyReport(dynamic=200, estimator=0, static=100, cycles=10)
        better = EnergyReport(dynamic=150, estimator=10, static=100, cycles=10)
        assert better.savings_vs(base) == pytest.approx(
            100.0 * (300 - 260) / 300
        )

    def test_edp_tradeoff(self):
        """Less energy but longer runtime can lose on EDP."""
        base = EnergyReport(dynamic=300, estimator=0, static=0, cycles=10)
        gated = EnergyReport(dynamic=250, estimator=0, static=0, cycles=13)
        assert gated.savings_vs(base) > 0
        assert gated.edp_savings_vs(base) < 0

    def test_zero_baseline_safe(self):
        zero = EnergyReport(dynamic=0, estimator=0, static=0, cycles=0)
        other = EnergyReport(dynamic=1, estimator=0, static=0, cycles=1)
        assert other.savings_vs(zero) == 0.0
        assert other.edp_savings_vs(zero) == 0.0


class TestEndToEnd:
    def test_gating_saves_energy(self, gzip_trace):
        from repro.core.estimator import AlwaysHighEstimator
        from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
        from repro.core.reversal import GatingOnlyPolicy, NoSpeculationControl
        from repro.pipeline.config import BASELINE_40X4
        from repro.pipeline.runner import run_machine
        from repro.predictors.hybrid import make_baseline_hybrid

        base = run_machine(
            gzip_trace,
            make_baseline_hybrid(),
            AlwaysHighEstimator(),
            NoSpeculationControl(),
            BASELINE_40X4,
            warmup=4000,
        )
        gated = run_machine(
            gzip_trace,
            make_baseline_hybrid(),
            PerceptronConfidenceEstimator(threshold=-25),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1),
            warmup=4000,
        )
        model = EnergyModel()
        base_e = model.evaluate(base.stats, estimator_active=False)
        gated_e = model.evaluate(gated.stats, estimator_active=True)
        assert gated_e.savings_vs(base_e) > 0

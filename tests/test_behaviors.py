"""Unit tests for repro.trace.behaviors."""

import numpy as np
import pytest

from repro.trace.behaviors import (
    BiasedBehavior,
    CorrelatedBehavior,
    HiddenCorrelationBehavior,
    LoopBehavior,
    PatternBehavior,
    PhasedBehavior,
    RandomBehavior,
)


def rng():
    return np.random.default_rng(11)


class TestBiasedBehavior:
    def test_deterministic_extremes(self):
        g = rng()
        always = BiasedBehavior(1.0)
        never = BiasedBehavior(0.0)
        assert all(always.next_outcome(0, g) for _ in range(50))
        assert not any(never.next_outcome(0, g) for _ in range(50))

    def test_bias_rate(self):
        g = rng()
        b = BiasedBehavior(0.9)
        taken = sum(b.next_outcome(0, g) for _ in range(5000))
        assert 0.87 < taken / 5000 < 0.93

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedBehavior(1.5)

    def test_kind_tag(self):
        assert BiasedBehavior(0.5).kind == "biased"
        assert RandomBehavior().kind == "random"


class TestPatternBehavior:
    def test_cycles(self):
        g = rng()
        p = PatternBehavior((True, True, False))
        out = [p.next_outcome(0, g) for _ in range(6)]
        assert out == [True, True, False, True, True, False]

    def test_reset(self):
        g = rng()
        p = PatternBehavior((True, False))
        p.next_outcome(0, g)
        p.reset()
        assert p.next_outcome(0, g) is True

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PatternBehavior(())


class TestLoopBehavior:
    def test_fixed_trip_shape(self):
        g = rng()
        loop = LoopBehavior(5, 5)
        out = [loop.next_outcome(0, g) for _ in range(10)]
        assert out == [True] * 4 + [False] + [True] * 4 + [False]

    def test_variable_trips_within_range(self):
        g = rng()
        loop = LoopBehavior(3, 6)
        for _ in range(30):
            run = 0
            while loop.next_outcome(0, g):
                run += 1
            assert 2 <= run <= 5  # trips-1 takens before the exit

    def test_exit_rate_matches_mean_trips(self):
        g = rng()
        loop = LoopBehavior(8, 12)
        outcomes = [loop.next_outcome(0, g) for _ in range(5000)]
        exits = outcomes.count(False)
        assert 5000 / 12 <= exits <= 5000 / 8

    def test_reset_mid_instance(self):
        g = rng()
        loop = LoopBehavior(5, 5)
        loop.next_outcome(0, g)
        loop.reset()
        out = [loop.next_outcome(0, g) for _ in range(5)]
        assert out == [True] * 4 + [False]

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopBehavior(0, 5)
        with pytest.raises(ValueError):
            LoopBehavior(5, 4)


class TestCorrelatedBehavior:
    def test_copy_mode(self):
        g = rng()
        c = CorrelatedBehavior((3,), mode="copy")
        assert c.next_outcome(0b1000, g) is True
        assert c.next_outcome(0b0000, g) is False

    def test_invert(self):
        g = rng()
        c = CorrelatedBehavior((0,), mode="copy", invert=True)
        assert c.next_outcome(0b1, g) is False

    def test_majority_mode(self):
        g = rng()
        c = CorrelatedBehavior((0, 1, 2), mode="majority")
        assert c.next_outcome(0b011, g) is True
        assert c.next_outcome(0b001, g) is False

    def test_parity_mode(self):
        g = rng()
        c = CorrelatedBehavior((0, 1), mode="parity")
        assert c.next_outcome(0b01, g) is True
        assert c.next_outcome(0b11, g) is False

    def test_noise_rate(self):
        g = rng()
        c = CorrelatedBehavior((0,), noise=0.2)
        flips = sum(
            c.next_outcome(0b1, g) is False for _ in range(5000)
        )
        assert 0.16 < flips / 5000 < 0.24

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedBehavior(())
        with pytest.raises(ValueError):
            CorrelatedBehavior((0, 1), mode="copy")
        with pytest.raises(ValueError):
            CorrelatedBehavior((0,), mode="bogus")
        with pytest.raises(ValueError):
            CorrelatedBehavior((-1,))
        with pytest.raises(ValueError):
            CorrelatedBehavior((0,), noise=2.0)


class TestHiddenCorrelationBehavior:
    def test_follows_bias_without_trigger(self):
        g = rng()
        h = HiddenCorrelationBehavior(
            far_tap=20, flip_prob=1.0, noise=0.0, bias_direction=True
        )
        assert h.next_outcome(0, g) is True

    def test_flips_on_trigger(self):
        g = rng()
        h = HiddenCorrelationBehavior(
            far_tap=20, flip_prob=1.0, noise=0.0, bias_direction=True
        )
        assert h.next_outcome(1 << 20, g) is False

    def test_second_tap_and(self):
        g = rng()
        h = HiddenCorrelationBehavior(
            far_tap=20, second_tap=24, flip_prob=1.0, noise=0.0,
            bias_direction=True,
        )
        assert h.next_outcome(1 << 20, g) is True  # second tap clear
        assert h.next_outcome((1 << 20) | (1 << 24), g) is False

    def test_invert_polarity(self):
        g = rng()
        h = HiddenCorrelationBehavior(
            far_tap=5, flip_prob=1.0, noise=0.0, invert=True,
            bias_direction=True,
        )
        # Inverted: trigger fires when the bit is CLEAR.
        assert h.next_outcome(0, g) is False
        assert h.next_outcome(1 << 5, g) is True

    def test_flip_probability(self):
        g = rng()
        h = HiddenCorrelationBehavior(
            far_tap=0, flip_prob=0.75, noise=0.0, bias_direction=True
        )
        flips = sum(h.next_outcome(1, g) is False for _ in range(4000))
        assert 0.70 < flips / 4000 < 0.80

    def test_validation(self):
        with pytest.raises(ValueError):
            HiddenCorrelationBehavior(far_tap=-1)
        with pytest.raises(ValueError):
            HiddenCorrelationBehavior(flip_prob=1.5)
        with pytest.raises(ValueError):
            HiddenCorrelationBehavior(second_tap=-2)


class TestPhasedBehavior:
    def test_phase_flip(self):
        g = rng()
        p = PhasedBehavior(phase_length=100, p_phase_a=1.0, p_phase_b=0.0)
        first = [p.next_outcome(0, g) for _ in range(100)]
        second = [p.next_outcome(0, g) for _ in range(100)]
        assert all(first)
        assert not any(second)

    def test_reset(self):
        g = rng()
        p = PhasedBehavior(phase_length=10, p_phase_a=1.0, p_phase_b=0.0)
        for _ in range(15):
            p.next_outcome(0, g)
        p.reset()
        assert p.next_outcome(0, g) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedBehavior(phase_length=0)
        with pytest.raises(ValueError):
            PhasedBehavior(phase_length=10, p_phase_a=-0.1)

"""Unit tests for repro.pipeline.runner (machine comparisons)."""

import pytest

from repro.core.estimator import AlwaysHighEstimator
from repro.core.jrs import JRSEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.reversal import GatingOnlyPolicy, NoSpeculationControl
from repro.pipeline.config import BASELINE_40X4
from repro.pipeline.runner import GatingRun, MachineRun, compare_policies, run_machine
from repro.predictors.hybrid import make_baseline_hybrid


class TestRunMachine:
    def test_baseline_run(self, simple_trace):
        run = run_machine(
            simple_trace,
            make_baseline_hybrid(),
            AlwaysHighEstimator(),
            NoSpeculationControl(),
            BASELINE_40X4,
            warmup=1000,
        )
        assert run.stats.branches == len(simple_trace) - 1000
        assert run.cycles > 0
        assert run.total_uops_executed >= run.stats.correct_path_uops

    def test_warmup_validation(self, simple_trace):
        with pytest.raises(ValueError):
            run_machine(
                simple_trace,
                make_baseline_hybrid(),
                AlwaysHighEstimator(),
                NoSpeculationControl(),
                BASELINE_40X4,
                warmup=-5,
            )

    def test_frontend_metrics_populated(self, simple_trace):
        run = run_machine(
            simple_trace,
            make_baseline_hybrid(),
            JRSEstimator(threshold=7),
            GatingOnlyPolicy(),
            BASELINE_40X4,
            warmup=1000,
        )
        assert run.frontend.metrics.overall.total == run.stats.branches


class TestComparePolicies:
    def test_gating_reduces_uops(self, gzip_trace):
        comparison = compare_policies(
            gzip_trace,
            make_baseline_hybrid,
            lambda: PerceptronConfidenceEstimator(threshold=-25),
            GatingOnlyPolicy(),
            BASELINE_40X4.with_gating(1),
            warmup=4000,
        )
        assert comparison.uop_reduction_pct > 0
        # Gating never reduces *correct-path* work.
        assert (
            comparison.policy.stats.correct_path_uops
            == comparison.baseline.stats.correct_path_uops
        )

    def test_speedup_is_negative_loss(self, simple_trace):
        comparison = compare_policies(
            simple_trace,
            make_baseline_hybrid,
            lambda: JRSEstimator(threshold=7),
            GatingOnlyPolicy(),
            BASELINE_40X4,
            warmup=1000,
        )
        assert comparison.speedup_pct == pytest.approx(
            -comparison.performance_loss_pct
        )

    def test_null_policy_matches_baseline(self, simple_trace):
        comparison = compare_policies(
            simple_trace,
            make_baseline_hybrid,
            AlwaysHighEstimator,
            NoSpeculationControl(),
            BASELINE_40X4,
            warmup=1000,
        )
        assert comparison.uop_reduction_pct == pytest.approx(0.0, abs=1e-9)
        assert comparison.performance_loss_pct == pytest.approx(0.0, abs=1e-9)

    def test_summary_keys(self, simple_trace):
        comparison = compare_policies(
            simple_trace,
            make_baseline_hybrid,
            AlwaysHighEstimator,
            NoSpeculationControl(),
            BASELINE_40X4,
        )
        summary = comparison.summary()
        assert set(summary) >= {"U_pct", "P_pct", "baseline_cycles"}

"""Unit tests for repro.common.bits."""

import pytest

from repro.common.bits import (
    bit_at,
    bits_to_pm1,
    fold_bits,
    mask,
    mix_hash,
    pm1_to_bits,
    popcount,
    sign,
    to_signed,
    to_unsigned,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(4) == 0b1111
        assert mask(8) == 0xFF

    def test_wide(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitAt:
    def test_lsb(self):
        assert bit_at(0b1010, 0) == 0
        assert bit_at(0b1010, 1) == 1

    def test_high_bit(self):
        assert bit_at(1 << 40, 40) == 1
        assert bit_at(1 << 40, 39) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bit_at(1, -1)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount(0xFF) == 8

    def test_sparse(self):
        assert popcount(0b1000_0001) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)


class TestFoldBits:
    def test_identity_when_fits(self):
        assert fold_bits(0b1011, 8) == 0b1011

    def test_folds_high_bits(self):
        # Two 4-bit slices: 0b1111 ^ 0b0001
        assert fold_bits(0b1111_0001, 4) == 0b1110

    def test_zero_width(self):
        assert fold_bits(12345, 0) == 0

    def test_result_fits_width(self):
        for value in (0, 1, 0xDEADBEEF, (1 << 60) - 3):
            assert 0 <= fold_bits(value, 10) < (1 << 10)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            fold_bits(1, -2)


class TestMixHash:
    def test_deterministic(self):
        assert mix_hash(42) == mix_hash(42)

    def test_spreads_close_inputs(self):
        a, b = mix_hash(1), mix_hash(2)
        assert a != b
        # At least a quarter of the bits differ for adjacent inputs.
        assert bin(a ^ b).count("1") > 16

    def test_nonnegative_64bit(self):
        for v in range(50):
            h = mix_hash(v)
            assert 0 <= h < (1 << 64)


class TestSign:
    def test_signs(self):
        assert sign(5) == 1
        assert sign(-3) == -1
        assert sign(0) == 0
        assert sign(0.001) == 1


class TestSignedConversion:
    def test_roundtrip(self):
        for value in (-128, -1, 0, 1, 127):
            assert to_signed(to_unsigned(value, 8), 8) == value

    def test_sign_extension(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128
        assert to_signed(0x7F, 8) == 127

    def test_width_validation(self):
        with pytest.raises(ValueError):
            to_signed(1, 0)
        with pytest.raises(ValueError):
            to_unsigned(1, -4)


class TestPm1Encoding:
    def test_bits_to_pm1(self):
        assert bits_to_pm1(0b101, 3) == (1, -1, 1)

    def test_pads_with_minus_one(self):
        assert bits_to_pm1(0b1, 3) == (1, -1, -1)

    def test_roundtrip(self):
        for value in (0, 1, 0b1011, 0b11111):
            assert pm1_to_bits(bits_to_pm1(value, 5)) == value

    def test_rejects_non_pm1(self):
        with pytest.raises(ValueError):
            pm1_to_bits((1, 0, -1))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            bits_to_pm1(0, -1)

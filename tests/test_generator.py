"""Unit tests for repro.trace.generator."""

import numpy as np
import pytest

from repro.trace.behaviors import BiasedBehavior, CorrelatedBehavior, LoopBehavior
from repro.trace.generator import (
    StaticBranch,
    TraceGenerator,
    WorkloadSpec,
    make_uniform_workload,
)


def biased_spec(n=6, **spec_kwargs):
    spec = WorkloadSpec(name="t", **spec_kwargs)
    for i in range(n):
        spec.add(
            StaticBranch(
                pc=0x400000 + 52 * i,
                behavior=BiasedBehavior(1.0 if i % 2 == 0 else 0.0),
            )
        )
    return spec


class TestStaticBranch:
    def test_validation(self):
        with pytest.raises(ValueError):
            StaticBranch(pc=-1, behavior=BiasedBehavior(0.5))
        with pytest.raises(ValueError):
            StaticBranch(pc=0, behavior=BiasedBehavior(0.5), weight=0)


class TestWorkloadSpec:
    def test_duplicate_pc_rejected(self):
        spec = biased_spec()
        with pytest.raises(ValueError):
            spec.add(StaticBranch(pc=0x400000, behavior=BiasedBehavior(0.5)))

    def test_normalized_weights(self):
        spec = biased_spec(4)
        w = spec.normalized_weights()
        assert w.sum() == pytest.approx(1.0)
        assert len(w) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", uops_per_branch=0.5)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", uop_jitter=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", block_repeat_mean=0.5)


class TestTraceGenerator:
    def test_exact_length(self):
        trace = TraceGenerator(biased_spec(), seed=1).generate(997)
        assert len(trace) == 997

    def test_deterministic(self):
        a = TraceGenerator(biased_spec(), seed=5).generate(500)
        b = TraceGenerator(biased_spec(), seed=5).generate(500)
        assert [(r.pc, r.taken, r.uops_before) for r in a] == [
            (r.pc, r.taken, r.uops_before) for r in b
        ]

    def test_seed_changes_trace(self):
        a = TraceGenerator(biased_spec(), seed=1).generate(500)
        b = TraceGenerator(biased_spec(), seed=2).generate(500)
        assert [r.pc for r in a] != [r.pc for r in b]

    def test_uop_density(self):
        spec = biased_spec(uops_per_branch=8.0)
        trace = TraceGenerator(spec, seed=1).generate(4000)
        mean_uops = trace.stats().total_uops / len(trace)
        assert 6.5 < mean_uops < 9.5

    def test_deterministic_outcomes_respected(self):
        spec = biased_spec()
        trace = TraceGenerator(spec, seed=1).generate(2000)
        for rec in trace:
            idx = (rec.pc - 0x400000) // 52
            assert rec.taken == (idx % 2 == 0)

    def test_block_structure_runs(self):
        # With block repetition, consecutive same-pc runs must be common.
        spec = biased_spec(9, block_size=3, block_repeat_mean=4.0)
        trace = TraceGenerator(spec, seed=1).generate(4000)
        pcs = [r.pc for r in trace]
        repeats = sum(
            1 for i in range(3, len(pcs)) if pcs[i] == pcs[i - 3]
        )
        assert repeats / len(pcs) > 0.4

    def test_block_size_one_is_iid(self):
        spec = biased_spec(9, block_size=1, block_repeat_mean=1.0)
        trace = TraceGenerator(spec, seed=1).generate(4000)
        pcs = [r.pc for r in trace]
        repeats = sum(1 for i in range(1, len(pcs)) if pcs[i] == pcs[i - 1])
        # i.i.d. selection over 9 equally weighted statics: ~1/9 repeats.
        assert repeats / len(pcs) < 0.25

    def test_loop_emits_full_instances(self):
        spec = WorkloadSpec(name="loops")
        spec.add(StaticBranch(pc=0x100, behavior=LoopBehavior(5, 5)))
        spec.add(StaticBranch(pc=0x200, behavior=BiasedBehavior(1.0)))
        trace = TraceGenerator(spec, seed=3).generate(3000)
        # Every maximal run of the loop pc must consist of full 5-visit
        # instances: 4 takens then an exit.
        i = 0
        records = list(trace)
        while i < len(records) - 6:
            if records[i].pc == 0x100:
                run = []
                while i < len(records) and records[i].pc == 0x100:
                    run.append(records[i].taken)
                    i += 1
                if i >= len(records):
                    break  # trace may truncate the last instance
                # Runs are whole instances: length multiple of 5 and
                # every 5th outcome is the not-taken exit.
                assert len(run) % 5 == 0
                for j, taken in enumerate(run):
                    assert taken == ((j % 5) != 4)
            else:
                i += 1

    def test_dynamic_weight_share(self):
        # A static with 3x the weight should execute ~3x as often.
        spec = WorkloadSpec(name="w", block_size=1, block_repeat_mean=1.0)
        spec.add(StaticBranch(pc=0x100, behavior=BiasedBehavior(1.0), weight=3.0))
        spec.add(StaticBranch(pc=0x200, behavior=BiasedBehavior(1.0), weight=1.0))
        trace = TraceGenerator(spec, seed=1).generate(8000)
        hot = sum(1 for r in trace if r.pc == 0x100)
        assert 0.68 < hot / 8000 < 0.82

    def test_loop_weight_accounts_for_instance_length(self):
        # A loop static with weight equal to a plain static should get a
        # similar *dynamic branch* share despite emitting whole
        # instances per visit.
        spec = WorkloadSpec(name="lw", block_size=1, block_repeat_mean=1.0)
        spec.add(StaticBranch(pc=0x100, behavior=LoopBehavior(10, 10), weight=1.0))
        spec.add(StaticBranch(pc=0x200, behavior=BiasedBehavior(1.0), weight=1.0))
        trace = TraceGenerator(spec, seed=1).generate(12000)
        loop_share = sum(1 for r in trace if r.pc == 0x100) / 12000
        assert 0.35 < loop_share < 0.65

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator(WorkloadSpec(name="empty"), seed=0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator(biased_spec(), seed=0).generate(-1)

    def test_correlated_sees_real_history(self):
        # A branch that copies history bit 0 must equal the previous
        # branch outcome in the generated trace.
        spec = WorkloadSpec(name="c", block_size=1, block_repeat_mean=1.0)
        spec.add(StaticBranch(pc=0x100, behavior=BiasedBehavior(0.5)))
        spec.add(
            StaticBranch(pc=0x200, behavior=CorrelatedBehavior((0,), noise=0.0))
        )
        trace = TraceGenerator(spec, seed=9).generate(3000)
        records = list(trace)
        for prev, cur in zip(records, records[1:]):
            if cur.pc == 0x200:
                assert cur.taken == prev.taken


class TestMakeUniformWorkload:
    def test_builds_equal_weights(self):
        spec = make_uniform_workload("u", [BiasedBehavior(0.5)] * 4)
        assert spec.static_count == 4
        assert (spec.normalized_weights() == 0.25).all()

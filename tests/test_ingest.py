"""External branch-trace ingestion: wire format, robustness, round-trip."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.core.frontend import FrontEnd
from repro.engine.specs import EstimatorSpec, PredictorSpec
from repro.trace.ingest import (
    EXTERNAL_MAGIC,
    EXTERNAL_RECORD_SIZE,
    TraceFormatError,
    ingest_external_trace,
    iter_external_records,
    write_external_trace,
)
from repro.trace.record import BranchRecord
from repro.trace.segments import SegmentedTrace


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _records(pairs):
    return [BranchRecord(pc=pc, taken=taken) for pc, taken in pairs]


PAIRS = st.lists(
    st.tuples(st.integers(0, 2**64 - 1), st.booleans()), max_size=200
)


class TestWireFormat:
    def test_record_size_is_pinned(self):
        # 8-byte LE pc + 1-byte taken; a drift here is a format break.
        assert EXTERNAL_RECORD_SIZE == 9
        assert len(EXTERNAL_MAGIC) == 8

    @given(pairs=PAIRS)
    @settings(max_examples=40, deadline=None)
    def test_write_then_read_round_trips(self, tmp_path_factory, pairs):
        path = str(tmp_path_factory.mktemp("ext") / "t.cbpbt")
        assert write_external_trace(_records(pairs), path) == len(pairs)
        back = [(r.pc, r.taken) for r in iter_external_records(path)]
        assert back == pairs

    def test_write_rejects_oversized_pc(self, tmp_path):
        path = str(tmp_path / "wide.cbpbt")
        with pytest.raises(TraceFormatError, match="64-bit"):
            write_external_trace(
                _records([(1 << 70, True)]), path
            )


class TestMalformedFiles:
    """Satellite: malformed input must fail structured, not raw."""

    def test_short_header_rejected(self, tmp_path):
        path = tmp_path / "short.cbpbt"
        path.write_bytes(EXTERNAL_MAGIC[:3])
        with pytest.raises(TraceFormatError, match="too short"):
            list(iter_external_records(str(path)))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.cbpbt"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            list(iter_external_records(str(path)))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "magic.cbpbt"
        path.write_bytes(b"NOTATRC\n" + struct.pack("<QB", 0x400000, 1))
        with pytest.raises(TraceFormatError, match="bad magic"):
            list(iter_external_records(str(path)))

    def test_invalid_taken_byte_rejected_with_index(self, tmp_path):
        path = tmp_path / "taken.cbpbt"
        body = struct.pack("<QB", 0x400000, 1) + struct.pack("<QB", 0x400004, 7)
        path.write_bytes(EXTERNAL_MAGIC + body)
        with pytest.raises(TraceFormatError, match="record 1"):
            list(iter_external_records(str(path)))

    def test_malformed_counter_increments(self, tmp_path):
        telemetry.enable()
        path = tmp_path / "magic.cbpbt"
        path.write_bytes(b"XXXXXXXX")
        with pytest.raises(TraceFormatError):
            list(iter_external_records(str(path)))
        snap = telemetry.get_registry().snapshot()
        assert snap.counter("trace_ingest_malformed_total") == 1

    def test_no_raw_struct_or_index_errors_leak(self, tmp_path):
        for i, payload in enumerate(
            (b"", EXTERNAL_MAGIC[:5], b"12345678" + b"\x00" * 9)
        ):
            path = tmp_path / f"bad{i}.cbpbt"
            path.write_bytes(payload)
            try:
                list(iter_external_records(str(path)))
            except TraceFormatError:
                continue
            except (struct.error, IndexError) as exc:  # pragma: no cover
                pytest.fail(f"raw {type(exc).__name__} leaked for {payload!r}")


class TestTruncatedTail:
    """Satellite: a torn trailing write keeps the valid prefix."""

    def test_prefix_survives_with_warning_counter(self, tmp_path):
        telemetry.enable()
        pairs = [(0x400000 + 4 * i, i % 3 == 0) for i in range(50)]
        path = str(tmp_path / "torn.cbpbt")
        write_external_trace(_records(pairs), path)
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03")  # partial 4th-byte of a record
        back = [(r.pc, r.taken) for r in iter_external_records(path)]
        assert back == pairs
        snap = telemetry.get_registry().snapshot()
        assert snap.counter("trace_ingest_truncated_total") == 1
        assert snap.counter("trace_ingest_malformed_total") == 0

    def test_mid_record_cut(self, tmp_path):
        pairs = [(0x500000 + 8 * i, bool(i % 2)) for i in range(20)]
        path = tmp_path / "cut.cbpbt"
        write_external_trace(_records(pairs), str(path))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(EXTERNAL_MAGIC) + 7 * EXTERNAL_RECORD_SIZE + 4])
        back = [(r.pc, r.taken) for r in iter_external_records(str(path))]
        assert back == pairs[:7]


class TestIngestToSegments:
    def test_ingest_lands_in_segmented_format(self, tmp_path):
        telemetry.enable()
        pairs = [(0x600000 + 4 * (i % 9), i % 4 != 0) for i in range(1_000)]
        src = str(tmp_path / "capture.cbpbt")
        write_external_trace(_records(pairs), src)
        trace = ingest_external_trace(src, str(tmp_path / "seg"), segment_size=256)
        assert isinstance(trace, SegmentedTrace)
        assert len(trace) == 1_000
        assert trace.n_segments == 4
        assert trace.name == "capture"
        assert [(r.pc, r.taken) for r in trace.iter_records()] == pairs
        assert trace.job_token()
        snap = telemetry.get_registry().snapshot()
        assert snap.counter("trace_ingest_records_total") == 1_000
        assert snap.counter("trace_ingest_files_total") == 1

    def test_reopen_from_disk(self, tmp_path):
        pairs = [(0x700000, True)] * 10
        src = str(tmp_path / "x.cbpbt")
        write_external_trace(_records(pairs), src)
        ingest_external_trace(src, str(tmp_path / "seg"), segment_size=4)
        reopened = SegmentedTrace(str(tmp_path / "seg"))
        assert len(reopened) == 10
        assert reopened.job_token()

    @given(pairs=PAIRS, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_round_trip_replay_equals_direct_replay(
        self, tmp_path_factory, pairs, seed
    ):
        """Satellite: write -> ingest -> replay == direct replay."""
        base = tmp_path_factory.mktemp("rt")
        records = _records(pairs)
        src = str(base / "t.cbpbt")
        write_external_trace(records, src)
        ingested = ingest_external_trace(src, str(base / "seg"), segment_size=64)

        def replay(stream):
            frontend = FrontEnd(
                PredictorSpec.of("tage", base_entries=64, tagged_entries=32,
                                 n_tables=3, max_history=20).build(),
                EstimatorSpec.of("perceptron", threshold=0).build(),
            )
            events = [
                (e.pc, e.taken, e.prediction, e.signal.raw)
                for e in map(frontend.process, stream)
            ]
            return events, frontend.predictor.state_digest()

        direct_events, direct_digest = replay(iter(records))
        ingested_events, ingested_digest = replay(ingested.iter_records())
        assert ingested_events == direct_events
        assert ingested_digest == direct_digest

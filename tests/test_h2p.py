"""H2P workload family and per-branch predictability analysis tests."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.branches import (
    TAXONOMY_CLASSES,
    BranchProfile,
    classify_taxonomy,
    direction_entropy,
    profile_events,
    profile_records,
)
from repro.trace.benchmarks import benchmark_record_stream, generate_benchmark_trace
from repro.trace.h2p import (
    H2P_PROFILE_NAMES,
    H2PBranch,
    H2PProfile,
    build_h2p_workload,
    h2p_profile,
    h2p_record_stream,
    is_h2p_benchmark,
)


class TestProfileRegistry:
    def test_family_names(self):
        assert H2P_PROFILE_NAMES == tuple(sorted(H2P_PROFILE_NAMES))
        assert len(H2P_PROFILE_NAMES) >= 4
        for name in H2P_PROFILE_NAMES:
            assert is_h2p_benchmark(name)
            profile = h2p_profile(name)
            assert isinstance(profile, H2PProfile)
            assert profile.name == name
            assert profile.branches

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            h2p_profile("h2p.nope")
        assert not is_h2p_benchmark("gzip")

    def test_branch_validation(self):
        with pytest.raises(ValueError):
            H2PBranch(cls="biased", predictability=1.5)
        with pytest.raises(ValueError):
            H2PBranch(cls="sideways", predictability=0.9)
        with pytest.raises(ValueError):
            H2PBranch(cls="loop", predictability=0.9, weight=0.0)

    def test_workloads_build_and_are_deterministic(self):
        for name in H2P_PROFILE_NAMES:
            spec_a = build_h2p_workload(h2p_profile(name), seed=5)
            spec_b = build_h2p_workload(h2p_profile(name), seed=5)
            pcs = [b.pc for b in spec_a.branches]
            assert pcs == [b.pc for b in spec_b.branches]
            assert len(pcs) == len(set(pcs)), "static pcs must be distinct"


class TestFamilyShape:
    """The family's defining property: few statics, hot and hard."""

    def test_few_statics_high_dynamic_share(self):
        for name in H2P_PROFILE_NAMES:
            trace = generate_benchmark_trace(name, n_branches=8_000, seed=2)
            summary = profile_records(trace.records)
            assert len(summary.profiles) <= 16, name
            hottest = max(p.executions for p in summary.profiles)
            assert hottest / len(trace) >= 0.10, name

    def test_streams_match_generated_prefix(self):
        for name in H2P_PROFILE_NAMES:
            trace = generate_benchmark_trace(name, n_branches=600, seed=9)
            stream = list(itertools.islice(h2p_record_stream(name, seed=9), 600))
            assert [(r.pc, r.taken) for r in stream] == [
                (r.pc, r.taken) for r in trace.records
            ]

    def test_dispatch_through_benchmark_layer(self):
        name = H2P_PROFILE_NAMES[0]
        via_benchmark = list(
            itertools.islice(benchmark_record_stream(name, seed=4), 300)
        )
        direct = list(itertools.islice(h2p_record_stream(name, seed=4), 300))
        assert [(r.pc, r.taken) for r in via_benchmark] == [
            (r.pc, r.taken) for r in direct
        ]

    def test_h2p_pcs_disjoint_from_spec_benchmarks(self):
        h2p_pcs = set()
        for name in H2P_PROFILE_NAMES:
            spec = build_h2p_workload(h2p_profile(name))
            h2p_pcs.update(b.pc for b in spec.branches)
        gzip_pcs = {r.pc for r in generate_benchmark_trace("gzip", 2_000, seed=1)}
        assert not (h2p_pcs & gzip_pcs)

    def test_experiment_settings_accept_h2p_names(self):
        from repro.experiments.common import ExperimentSettings

        settings_ = ExperimentSettings(benchmarks=("h2p.mix", "gzip"))
        assert "h2p.mix" in settings_.benchmarks
        with pytest.raises(ValueError):
            ExperimentSettings(benchmarks=("h2p.bogus",))


class TestDirectionEntropy:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_bounded_and_permutation_invariant(self, taken, not_taken):
        e = direction_entropy(taken, not_taken)
        assert 0.0 <= e <= 1.0
        assert e == direction_entropy(not_taken, taken)

    @given(st.integers(0, 10_000))
    def test_constant_direction_is_zero(self, n):
        assert direction_entropy(n, 0) == 0.0
        assert direction_entropy(0, n) == 0.0

    @given(st.integers(1, 10_000))
    def test_balanced_is_maximal(self, n):
        assert direction_entropy(n, n) == pytest.approx(1.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            direction_entropy(-1, 3)


class TestTaxonomy:
    def test_classes_cover_spectrum(self):
        total = 100_000
        hot = total // 10
        constant = BranchProfile(pc=0x10, executions=hot, taken=hot)
        biased = BranchProfile(pc=0x20, executions=hot, taken=int(hot * 0.97))
        # Balanced directions but well-predicted: mixed, not H2P.
        mixed = BranchProfile(
            pc=0x30,
            executions=hot,
            taken=hot // 2,
            mispredicts=int(hot * 0.01),
        )
        h2p = BranchProfile(
            pc=0x40,
            executions=hot,
            taken=hot // 2,
            mispredicts=int(hot * 0.3),
        )
        assert classify_taxonomy(constant, total) == "constant"
        assert classify_taxonomy(biased, total) == "biased"
        assert classify_taxonomy(mixed, total) == "mixed"
        assert classify_taxonomy(h2p, total) == "h2p"
        for profile in (constant, biased, mixed, h2p):
            assert classify_taxonomy(profile, total) in TAXONOMY_CLASSES

    def test_cold_random_branch_is_not_h2p(self):
        cold = BranchProfile(pc=0x50, executions=10, taken=5, mispredicts=5)
        assert classify_taxonomy(cold, 1_000_000) == "mixed"

    def test_noisy_profile_surfaces_h2p_statics(self):
        from repro.core.frontend import FrontEnd
        from repro.engine.specs import EstimatorSpec, PredictorSpec

        trace = generate_benchmark_trace("h2p.noisy", n_branches=12_000, seed=3)
        frontend = FrontEnd(
            PredictorSpec.of("baseline_hybrid").build(),
            EstimatorSpec.of("perceptron", threshold=0).build(),
        )
        events = [frontend.process(r) for r in trace.records]
        summary = profile_events(events[2_000:])
        assert summary.h2p_branches(), "noisy family must expose H2P statics"
        labels = {row["taxonomy"] for row in summary.rows()}
        assert labels <= set(TAXONOMY_CLASSES)

    def test_profile_records_counts(self):
        trace = generate_benchmark_trace("h2p.hotloop", n_branches=2_000, seed=1)
        summary = profile_records(trace.records)
        assert summary.total_executions == 2_000
        assert sum(p.executions for p in summary.profiles) == 2_000
        for profile in summary.profiles:
            assert profile.mispredicts is None
            assert 0.0 <= profile.entropy <= 1.0

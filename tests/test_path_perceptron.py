"""Unit tests for the path-based perceptron estimator (extension)."""

import pytest

from repro.core.frontend import FrontEnd
from repro.core.path_perceptron import PathPerceptronConfidenceEstimator
from repro.predictors.hybrid import make_baseline_hybrid


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            PathPerceptronConfidenceEstimator(table_entries=0)
        with pytest.raises(ValueError):
            PathPerceptronConfidenceEstimator(history_length=0)
        with pytest.raises(ValueError):
            PathPerceptronConfidenceEstimator(weight_bits=1)
        with pytest.raises(ValueError):
            PathPerceptronConfidenceEstimator(training_threshold=-1)

    def test_storage_accounting(self):
        est = PathPerceptronConfidenceEstimator(
            table_entries=256, history_length=16, weight_bits=8
        )
        assert est.storage_bits == (256 * 16 + 256) * 8


class TestLearning:
    def feed(self, est, pc, correct, taken=True):
        signal = est.estimate(pc, True)
        est.train(pc, True, correct, signal)
        est.shift_history(taken)
        return signal

    def test_cold_output_zero(self):
        est = PathPerceptronConfidenceEstimator()
        assert est.output(0x400000) == 0

    def test_mispredicted_stream_goes_low_confidence(self):
        est = PathPerceptronConfidenceEstimator(training_threshold=200)
        for _ in range(40):
            self.feed(est, 0x400000, correct=False)
        assert est.estimate(0x400000, True).low_confidence

    def test_correct_stream_stays_high_confidence(self):
        est = PathPerceptronConfidenceEstimator()
        for _ in range(80):
            self.feed(est, 0x400000, correct=True)
        sig = est.estimate(0x400000, True)
        assert not sig.low_confidence
        assert sig.raw < -est.training_threshold / 2

    def test_path_sensitivity(self):
        """The same branch after different predecessor paths gets
        different weight indices (the whole point of path indexing)."""
        est = PathPerceptronConfidenceEstimator(training_threshold=200)
        target = 0x400400
        # Path A: predecessors 0x100..., mispredicted target.
        for _ in range(30):
            self.feed(est, 0x100, correct=True)
            self.feed(est, target, correct=False)
        y_after_a = None
        self.feed(est, 0x100, correct=True)
        y_after_a = est.output(target)
        # Path B: different predecessor.
        self.feed(est, 0x900, correct=True)
        y_after_b = est.output(target)
        assert y_after_a != y_after_b

    def test_weights_saturate(self):
        est = PathPerceptronConfidenceEstimator(weight_bits=4,
                                                training_threshold=10_000)
        for _ in range(200):
            self.feed(est, 0x400000, correct=False)
        assert est._weights.max() <= 7
        assert est._weights.min() >= -8
        assert abs(est.output(0x400000)) <= (est.history_length + 1) * 8

    def test_reset(self):
        est = PathPerceptronConfidenceEstimator()
        for _ in range(20):
            self.feed(est, 0x400000, correct=False)
        est.reset()
        assert est.output(0x400000) == 0
        assert est.history.bits == 0


class TestOnBenchmark:
    def test_separates_on_gzip(self, gzip_trace):
        est = PathPerceptronConfidenceEstimator()
        result = FrontEnd(make_baseline_hybrid(), est).replay(
            gzip_trace, warmup=4000
        )
        matrix = result.metrics.overall
        # The path variant must be a usable estimator: accuracy above
        # the base rate, nonzero coverage.
        assert matrix.pvn > 2 * matrix.misprediction_rate
        assert matrix.spec > 0.05

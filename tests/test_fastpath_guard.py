"""The fast path must degrade cleanly when numpy is absent.

numpy ships only with the optional ``repro[fast]`` extra, so a bare
install imports :mod:`repro.fastpath` without it.  The package must
still import, report itself unavailable, decline every job (the engine
then runs the reference loop) and raise an error *naming the extra*
when a fast replay is demanded anyway.

The missing dependency is simulated by poisoning ``sys.modules`` and
re-importing the package; CI additionally runs the real thing (a leg
with numpy uninstalled, see .github/workflows/ci.yml).
"""

import importlib
import sys

import pytest

from repro.engine import SimJob


def _fastpath_module_names():
    return [
        name
        for name in sys.modules
        if name == "repro.fastpath" or name.startswith("repro.fastpath.")
    ]


def test_fastpath_degrades_cleanly_without_numpy(monkeypatch):
    import repro

    saved = {name: sys.modules[name] for name in _fastpath_module_names()}
    monkeypatch.setitem(sys.modules, "numpy", None)  # import numpy -> ImportError
    for name in saved:
        del sys.modules[name]
    try:
        fastpath = importlib.import_module("repro.fastpath")
        assert not fastpath.available()

        job = SimJob(
            benchmark="gzip", n_branches=100, warmup=0, seed=1, backend="fast"
        )
        assert fastpath.supports(job) is False

        with pytest.raises(fastpath.FastPathUnavailable) as err:
            fastpath.require()
        message = str(err.value)
        assert "numpy" in message
        assert "repro[fast]" in message

        with pytest.raises(fastpath.FastPathUnavailable):
            fastpath.replay(job, trace=None)
        with pytest.raises(fastpath.FastPathUnavailable):
            fastpath.replay_with_state(job, trace=None)
    finally:
        for name in _fastpath_module_names():
            del sys.modules[name]
        sys.modules.update(saved)
        if "repro.fastpath" in saved:
            repro.fastpath = saved["repro.fastpath"]


def test_fastpath_package_has_no_eager_repro_imports():
    """The no-numpy CI leg loads the package standalone; keep it loadable.

    ``repro.fastpath`` may only import the rest of the repo lazily
    (inside functions), so reading its source must reveal no top-level
    ``repro.`` imports besides submodule siblings.
    """
    import repro.fastpath as fastpath

    source = open(fastpath.__file__, "r", encoding="utf-8").read()
    for line in source.splitlines():
        # Indented imports are inside functions and therefore lazy;
        # only module-level ones would break a numpy-less import.
        if line.startswith(("import repro", "from repro")):
            pytest.fail(
                f"repro.fastpath has an eager repro import: {line.strip()!r}"
            )

"""The distributed fleet: queue state machine, robustness, crash-resume.

Unit tests drive the :class:`~repro.fleet.queue.WorkQueue` state
machine directly (lease expiry, attempt budgets, failed-row revival);
the end-to-end test runs real ``python -m repro.fleet worker``
subprocesses against a shared cache dir, kills one mid-queue (via
``--max-jobs``), restarts, and proves the sweep completes with zero
duplicate replays and results bit-identical to a serial run.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro import telemetry
from repro.engine import Engine, SimJob
from repro.engine.canonical import canonical_metrics
from repro.fleet import (
    FleetExecutor,
    FleetJobError,
    FleetSchemaError,
    WorkQueue,
    default_queue_path,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _jobs(n=3, n_branches=1500, benchmark="gzip"):
    return [
        SimJob(benchmark=benchmark, n_branches=n_branches, warmup=100, seed=s)
        for s in range(1, n + 1)
    ]


def _spawn_worker(queue_path, cache_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.fleet", "worker",
            "--queue", str(queue_path), "--cache-dir", str(cache_dir),
            "--poll", "0.05", *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


class TestWorkQueue:
    def test_enqueue_deduplicates_by_fingerprint(self, tmp_path):
        job = _jobs(1)[0]
        with WorkQueue(tmp_path / "q.sqlite") as queue:
            assert queue.enqueue(job)
            assert not queue.enqueue(job)  # second submitter: same row
            status = queue.status()
            assert status["rows"] == 1
            assert status["requests"] == 2
            assert status["pending"] == 1

    def test_lease_complete_cycle(self, tmp_path):
        job = _jobs(1)[0]
        with WorkQueue(tmp_path / "q.sqlite") as queue:
            queue.enqueue(job)
            lease = queue.lease("w1", lease_seconds=60)
            assert lease is not None
            assert lease.fingerprint == job.fingerprint
            assert lease.job == job
            assert lease.attempts == 1
            assert lease.expired_from is None
            assert queue.lease("w2") is None  # nothing else claimable
            assert queue.complete(job.fingerprint, "w1", b"shipment")
            assert queue.states([job.fingerprint])[job.fingerprint][0] == "done"
            assert queue.take_shipment(job.fingerprint) == b"shipment"
            # First completion wins; a stale duplicate is ignored.
            assert not queue.complete(job.fingerprint, "w2", b"other")
            assert queue.take_shipment(job.fingerprint) == b"shipment"

    def test_expired_lease_is_reclaimed_by_next_worker(self, tmp_path):
        job = _jobs(1)[0]
        registry = telemetry.enable()
        with WorkQueue(tmp_path / "q.sqlite") as queue:
            queue.enqueue(job)
            assert queue.lease("dead", lease_seconds=0.01) is not None
            time.sleep(0.05)
            lease = queue.lease("alive", lease_seconds=60)
            assert lease is not None
            assert lease.expired_from == "dead"
            assert lease.attempts == 2
        assert registry.snapshot().counter("fleet_lease_expired_total") == 1

    def test_reap_expired_requeues_with_counter_and_event(self, tmp_path):
        job = _jobs(1)[0]
        registry = telemetry.enable()
        with WorkQueue(tmp_path / "q.sqlite") as queue:
            queue.enqueue(job)
            queue.lease("dead", lease_seconds=0.01)
            time.sleep(0.05)
            assert queue.reap_expired() == 1
            state = queue.states([job.fingerprint])[job.fingerprint][0]
            assert state == "pending"
        assert registry.snapshot().counter("fleet_lease_expired_total") == 1

    def test_attempts_exhaust_to_failed(self, tmp_path):
        job = _jobs(1)[0]
        with WorkQueue(tmp_path / "q.sqlite") as queue:
            queue.enqueue(job, max_attempts=2)
            for _ in range(2):
                assert queue.lease("w", lease_seconds=0.01) is not None
                time.sleep(0.05)
            # Third claim would exceed the budget: the row fails instead.
            assert queue.lease("w") is None
            state, error, attempts = queue.states([job.fingerprint])[
                job.fingerprint
            ]
            assert state == "failed"
            assert "max_attempts" in error
            assert attempts == 2

    def test_fail_requeues_until_budget_then_fails(self, tmp_path):
        job = _jobs(1)[0]
        registry = telemetry.enable()
        with WorkQueue(tmp_path / "q.sqlite") as queue:
            queue.enqueue(job, max_attempts=2)
            queue.lease("w")
            assert queue.fail(job.fingerprint, "w", "boom") == "pending"
            queue.lease("w")
            assert queue.fail(job.fingerprint, "w", "boom") == "failed"
        assert registry.snapshot().counter("fleet_requeued_total") == 1

    def test_enqueue_revives_failed_rows(self, tmp_path):
        job = _jobs(1)[0]
        with WorkQueue(tmp_path / "q.sqlite") as queue:
            queue.enqueue(job, max_attempts=1)
            queue.lease("w")
            queue.fail(job.fingerprint, "w", "boom")
            queue.enqueue(job)  # a fresh submitter is the retry signal
            state, error, attempts = queue.states([job.fingerprint])[
                job.fingerprint
            ]
            assert (state, error, attempts) == ("pending", None, 0)

    def test_schema_mismatch_refuses_to_open(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with WorkQueue(path) as queue:
            queue._conn.execute(
                "UPDATE meta SET value = '999' WHERE key = 'fleet_schema'"
            )
            queue._conn.commit()
        with pytest.raises(FleetSchemaError, match="fleet_schema=999"):
            WorkQueue(path)


class TestFleetExecutor:
    def test_requires_cache_dir(self, tmp_path):
        engine = Engine(executor=FleetExecutor(str(tmp_path / "q.sqlite")))
        with pytest.raises(ValueError, match="cache_dir"):
            engine.run(_jobs(1))

    def test_wait_timeout_raises_typed_error(self, tmp_path):
        executor = FleetExecutor(
            str(tmp_path / "q.sqlite"), poll=0.02, wait_timeout=0.2
        )
        engine = Engine(cache_dir=str(tmp_path / "cache"), executor=executor)
        with pytest.raises(FleetJobError, match="timed out"):
            engine.run(_jobs(1))

    def test_exhausted_job_surfaces_fleet_job_error(self, tmp_path):
        """A job failing max_attempts times raises, never hangs."""
        queue_path = str(tmp_path / "q.sqlite")
        job = _jobs(1)[0]
        stop = threading.Event()

        def crashing_worker():
            # Leases keep failing until the attempt budget is gone.
            with WorkQueue(queue_path) as queue:
                while not stop.is_set():
                    lease = queue.lease("crashy", lease_seconds=30)
                    if lease is None:
                        time.sleep(0.02)
                        continue
                    queue.fail(lease.fingerprint, "crashy", "synthetic crash")

        thread = threading.Thread(target=crashing_worker, daemon=True)
        thread.start()
        try:
            executor = FleetExecutor(
                queue_path, poll=0.02, wait_timeout=30, max_attempts=2
            )
            engine = Engine(
                cache_dir=str(tmp_path / "cache"), executor=executor
            )
            with pytest.raises(FleetJobError, match="synthetic crash") as exc:
                engine.run([job])
            assert exc.value.fingerprint == job.fingerprint
        finally:
            stop.set()
            thread.join(timeout=5)


class TestFleetEndToEnd:
    def test_crash_resume_no_duplicate_replays_bit_identical(self, tmp_path):
        """Kill a worker mid-queue, restart, finish: zero duplicates.

        Worker 1 exits after 2 of 4 jobs (the mid-queue "crash");
        worker 2 drains the rest.  The merged telemetry must show
        exactly one replay per unique job, and outcomes must be
        bit-identical to a serial run.
        """
        jobs = _jobs(4)
        # Serial reference first, before telemetry turns on, so its
        # replays stay out of the merged fleet counters.
        reference = Engine(max_workers=1).run(jobs)

        cache_dir = str(tmp_path / "cache")
        queue_path = default_queue_path(cache_dir)
        registry = telemetry.enable()
        registry.reset()

        executor = FleetExecutor(queue_path, poll=0.05, wait_timeout=120)
        engine = Engine(cache_dir=cache_dir, executor=executor)
        out = {}
        submitter = threading.Thread(
            target=lambda: out.setdefault("results", engine.run(jobs))
        )
        submitter.start()
        try:
            first = _spawn_worker(
                queue_path, cache_dir, "--max-jobs", "2"
            )
            assert first.wait(timeout=90) == 0
            assert submitter.is_alive(), "2 jobs must still be pending"
            second = _spawn_worker(
                queue_path, cache_dir, "--idle-exit", "1"
            )
            submitter.join(timeout=90)
            assert not submitter.is_alive()
            assert second.wait(timeout=90) == 0
        finally:
            if submitter.is_alive():  # pragma: no cover - debug aid
                raise AssertionError("fleet submitter never completed")

        results = out["results"]
        for expected, got in zip(reference, results):
            assert expected.events == got.events
            assert canonical_metrics(expected.result) == canonical_metrics(
                got.result
            )

        snap = registry.snapshot()
        replays = sum(snap.counter_series("engine_replays_total").values())
        assert replays == len(jobs), "crash-resume must not replay twice"
        assert snap.counter("fleet_enqueued_total") == len(jobs)
        assert snap.counter("fleet_completed_total") == len(jobs)
        assert snap.counter("fleet_leased_total") == len(jobs)
        assert snap.counter("engine_jobs_parallel_total") == len(jobs)

        with WorkQueue(queue_path) as queue:
            status = queue.status()
        assert status["done"] == len(jobs)
        assert status["pending"] == status["leased"] == status["failed"] == 0

    def test_fleet_lease_spans_reach_the_submitter_trace(self, tmp_path):
        """Worker lanes: fleet.lease spans ship home through the queue."""
        import json

        jobs = _jobs(2)
        cache_dir = str(tmp_path / "cache")
        queue_path = default_queue_path(cache_dir)
        trace_path = tmp_path / "trace.jsonl"

        registry = telemetry.enable()
        registry.reset()
        telemetry.set_trace_path(str(trace_path))
        try:
            executor = FleetExecutor(queue_path, poll=0.05, wait_timeout=120)
            engine = Engine(cache_dir=cache_dir, executor=executor)
            out = {}
            submitter = threading.Thread(
                target=lambda: out.setdefault("results", engine.run(jobs))
            )
            submitter.start()
            worker = _spawn_worker(queue_path, cache_dir, "--idle-exit", "1")
            submitter.join(timeout=90)
            assert not submitter.is_alive()
            assert worker.wait(timeout=90) == 0
        finally:
            telemetry.close_trace()

        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        lease_spans = [
            e
            for e in events
            if e.get("event") == "span" and e.get("name") == "fleet.lease"
        ]
        assert len(lease_spans) == len(jobs)
        submitter_pid = os.getpid()
        for span in lease_spans:
            assert span["pid"] != submitter_pid, "span must come from a worker"
            assert span["fields"]["worker"]
            assert span["parent_id"] is not None, "re-parented under fleet.wait"

"""Segmented streaming execution at the engine layer.

Covers the executor chain (:func:`repro.engine.segmented.replay_segmented`),
its integration with :class:`repro.engine.Engine` (``segment_size`` jobs,
:meth:`Engine.stream`), the segment cache's prefix-reuse behaviour
(observed through telemetry counters), the peak-memory contract of
streaming, and the deprecation shim on the old whole-trace entry point.

``SimJob.fingerprint`` deliberately excludes ``segment_size`` (it is an
execution knob, not an outcome input), so tests that re-run the same
logical job with different segmentation must clear the engine's
job-level replay cache first -- otherwise the cached monolithic outcome
is served and segmentation is never exercised.
"""

import tracemalloc

import pytest

from repro import telemetry
from repro.core.frontend import FrontEnd, FrontEndResult, aggregate_event
from repro.engine import (
    Engine,
    ReplayCheckpoint,
    SimJob,
    canonical_metrics,
    replay_segmented,
    segment_fingerprint,
)
from repro.engine.cache import SegmentCache
from repro.verify.matrix import CASES


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _job(case, **overrides):
    base = dict(
        benchmark="gzip",
        n_branches=4000,
        warmup=1000,
        seed=5,
        predictor=case.predictor,
        estimator=case.estimator,
        policy=case.policy,
    )
    base.update(overrides)
    return SimJob(**base)


class TestReplayCheckpoint:
    def test_initial(self):
        cp = ReplayCheckpoint.initial()
        assert cp.position == 0
        assert cp.predictor_state is None
        assert cp.estimator_state is None
        assert cp.history_bits == 0
        assert cp.path == ()

    def test_digest_distinguishes_state(self):
        a = ReplayCheckpoint.initial()
        b = ReplayCheckpoint(1, None, None, 1, (0x40,))
        assert a.digest != b.digest
        assert a.digest == ReplayCheckpoint.initial().digest

    def test_segment_fingerprint_chains_on_incoming_digest(self):
        job = _job(CASES[0])
        d0 = ReplayCheckpoint.initial().digest
        fp_a = segment_fingerprint(job, 0, 1000, d0)
        fp_b = segment_fingerprint(job, 0, 1000, "different")
        assert fp_a != fp_b
        # n_branches/warmup are execution-window knobs, not segment
        # content: a longer job shares the prefix segment addresses.
        longer = _job(CASES[0], n_branches=8000, warmup=0)
        assert segment_fingerprint(longer, 0, 1000, d0) == fp_a


class TestSegmentedEquivalence:
    def test_job_validates_segment_size(self):
        with pytest.raises(ValueError):
            _job(CASES[0], segment_size=0)

    @pytest.mark.parametrize("segment_size", [997, 1000, 4096])
    def test_reference_backend_matches_monolithic(self, segment_size):
        engine = Engine()
        job = _job(CASES[1])  # jrs-l7 with gating
        mono = engine.replay(job)
        engine._replays.clear()  # same fingerprint: force real execution
        seg = engine.replay(job.with_(segment_size=segment_size))
        assert seg.events == mono.events
        assert canonical_metrics(seg.result) == canonical_metrics(mono.result)
        assert seg.backend == "reference"

    def test_fast_backend_matches_monolithic(self):
        engine = Engine()
        job = _job(CASES[3], backend="fast")  # perceptron-cic-l0
        mono = engine.replay(job)
        engine._replays.clear()
        seg = engine.replay(job.with_(segment_size=997))
        assert seg.events == mono.events
        assert canonical_metrics(seg.result) == canonical_metrics(mono.result)
        assert seg.backend == "fast"

    def test_final_checkpoint_matches_live_frontend(self):
        case = CASES[1]
        engine = Engine()
        trace = engine.trace("gzip", 4000, seed=5)
        job = _job(case, segment_size=1000)
        _, checkpoint = replay_segmented(job, trace, cache=SegmentCache())

        frontend = FrontEnd(
            case.predictor.build(), case.estimator.build(), case.policy.build()
        )
        for record in trace:
            frontend.process(record)
        assert checkpoint.position == 4000
        assert checkpoint.predictor_state == frontend.predictor.checkpoint()
        assert checkpoint.estimator_state == frontend.estimator.checkpoint()


class TestPrefixReuse:
    def test_extending_a_trace_replays_only_dirty_segments(self):
        """The headline incremental-replay property, seen via telemetry.

        A 4000-branch job is replayed segmented (4 misses), then the
        *same configuration* is re-run for 5000 branches: the four
        prefix segments hit the cache and only the new fifth segment
        executes.
        """
        telemetry.enable()
        tel = telemetry.get_registry()
        engine = Engine()

        job = _job(CASES[1], segment_size=1000)
        engine.replay(job)
        assert tel.counter("cache_segment_misses_total").value == 4
        assert tel.counter("cache_segment_hits_total", tier="memory").value == 0

        engine._replays.clear()
        engine.replay(job.with_(n_branches=5000))
        assert tel.counter("cache_segment_misses_total").value == 5
        assert tel.counter("cache_segment_hits_total", tier="memory").value == 4
        # Exactly five distinct segments were ever executed.
        assert (
            tel.counter("engine_segments_total", backend="reference").value == 5
        )

    def test_late_config_change_reuses_shared_prefix_nothing_more(self):
        """Different estimator => different chain from segment 0."""
        telemetry.enable()
        tel = telemetry.get_registry()
        engine = Engine()

        engine.replay(_job(CASES[1], segment_size=1000))
        misses_before = tel.counter("cache_segment_misses_total").value
        engine.replay(_job(CASES[2], segment_size=1000))  # enhanced jrs
        assert (
            tel.counter("cache_segment_misses_total").value
            == misses_before + 4
        )
        assert tel.counter("cache_segment_hits_total", tier="memory").value == 0

    def test_warmup_change_is_fully_cached(self):
        """Warm-up applies at merge time: no segment re-executes."""
        telemetry.enable()
        tel = telemetry.get_registry()
        engine = Engine()

        job = _job(CASES[1], segment_size=1000)
        full = engine.replay(job)
        engine._replays.clear()
        rewarmed = engine.replay(job.with_(warmup=2000))
        assert tel.counter("cache_segment_misses_total").value == 4
        assert tel.counter("cache_segment_hits_total", tier="memory").value == 4
        assert rewarmed.events == full.events[1000:]


class TestEngineStream:
    def test_stream_matches_monolithic_metrics(self):
        engine = Engine()
        job = _job(CASES[1])
        mono = engine.replay(job)
        streamed = engine.stream(job, segment_size=700)
        assert isinstance(streamed, FrontEndResult)
        assert canonical_metrics(streamed) == canonical_metrics(mono.result)

    def test_stream_peak_memory_stays_bounded(self):
        """tracemalloc guard: streaming must not scale with trace length.

        The monolithic path materializes the whole trace and its event
        list; the stream path holds one segment of records plus
        accumulators.  Requiring a 3x gap keeps the guard robust while
        still failing loudly if someone materializes the stream.
        """
        engine = Engine()
        job = _job(CASES[0], n_branches=30_000, warmup=0)

        tracemalloc.start()
        engine.replay(job)
        _, replay_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        streaming_engine = Engine()  # fresh caches: no shared trace
        tracemalloc.start()
        streaming_engine.stream(job, segment_size=1000)
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert stream_peak * 3 < replay_peak, (
            f"stream peak {stream_peak} vs monolithic {replay_peak}"
        )


class TestDeprecatedRun:
    def test_frontend_run_warns_and_delegates(self, simple_trace):
        case = CASES[0]
        shim = FrontEnd(
            case.predictor.build(), case.estimator.build(), case.policy.build()
        )
        with pytest.warns(DeprecationWarning, match="FrontEnd.run"):
            shimmed = shim.run(simple_trace.slice(0, 500), warmup=100)

        direct = FrontEnd(
            case.predictor.build(), case.estimator.build(), case.policy.build()
        )
        replayed = direct.replay(simple_trace.slice(0, 500), warmup=100)
        assert canonical_metrics(shimmed) == canonical_metrics(replayed)

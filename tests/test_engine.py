"""Tests for the declarative simulation engine.

Covers the spec registries, job fingerprinting, the budgeted replay and
trace caches (memory and disk), batch execution with deduplication, and
the determinism contract: serial, parallel and cached runs of the same
jobs must be bit-identical.
"""

import logging
import os
import pickle

import pytest

from repro.engine import (
    ALWAYS_HIGH,
    BASELINE_PREDICTOR,
    GATING_POLICY,
    NO_POLICY,
    Engine,
    EstimatorSpec,
    PolicySpec,
    PredictorSpec,
    ReplayCache,
    ReplayOutcome,
    SimJob,
    SpecError,
    TraceCache,
)
from repro.engine.cache import _LruBudget

JOB = SimJob(
    benchmark="gzip",
    n_branches=3_000,
    warmup=1_000,
    seed=1,
    estimator=EstimatorSpec.of("perceptron", threshold=0),
)


class TestSpecs:
    def test_registries_are_separate(self):
        assert "perceptron" in EstimatorSpec.kinds()
        assert "perceptron" not in PolicySpec.kinds()
        assert "baseline_hybrid" in PredictorSpec.kinds()

    def test_unknown_kind(self):
        with pytest.raises(SpecError):
            EstimatorSpec.of("nonesuch")

    def test_params_are_order_insensitive(self):
        a = EstimatorSpec.of("jrs", threshold=7, enhanced=True)
        b = EstimatorSpec.of("jrs", enhanced=True, threshold=7)
        assert a == b
        assert hash(a) == hash(b)

    def test_build_constructs_component(self):
        est = EstimatorSpec.of("jrs", threshold=7).build()
        assert est.name.startswith("jrs") or "JRS" in type(est).__name__

    def test_build_rejects_bad_params(self):
        with pytest.raises(TypeError):
            EstimatorSpec.of("jrs", nonesuch=1).build()

    def test_nested_fusion_spec(self):
        fused = EstimatorSpec.of(
            "agreement",
            primary=EstimatorSpec.of("perceptron", threshold=0),
            secondary=EstimatorSpec.of("jrs", threshold=7),
            mode="union",
        )
        built = fused.build()
        assert type(built).__name__ == "AgreementEstimator"
        # Nested specs appear in the canonical form (fingerprintable).
        assert "jrs" in repr(fused.canonical())

    def test_specs_are_picklable(self):
        spec = EstimatorSpec.of("perceptron", threshold=0)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_unhashable_param_rejected(self):
        with pytest.raises(SpecError):
            EstimatorSpec.of("perceptron", weights=[1, 2, 3], bad=object())


class TestSimJob:
    def test_fingerprint_is_stable_and_sensitive(self):
        same = SimJob(
            benchmark="gzip",
            n_branches=3_000,
            warmup=1_000,
            seed=1,
            estimator=EstimatorSpec.of("perceptron", threshold=0),
        )
        assert same.fingerprint == JOB.fingerprint
        for changed in (
            JOB.with_(seed=2),
            JOB.with_(n_branches=4_000),
            JOB.with_(warmup=999),
            JOB.with_(benchmark="gcc"),
            JOB.with_(estimator=EstimatorSpec.of("perceptron", threshold=1)),
            JOB.with_(policy=GATING_POLICY),
            JOB.with_(collect_outputs=True),
            JOB.with_(backend="fast"),
            JOB.with_(speculation="off"),
        ):
            assert changed.fingerprint != JOB.fingerprint

    def test_defaults(self):
        job = SimJob(benchmark="gzip", n_branches=100, warmup=0, seed=1)
        assert job.predictor == BASELINE_PREDICTOR
        assert job.estimator == ALWAYS_HIGH
        assert job.policy == NO_POLICY

    def test_validation(self):
        with pytest.raises(ValueError):
            SimJob(benchmark="gzip", n_branches=0, warmup=0, seed=1)
        with pytest.raises(ValueError):
            SimJob(benchmark="gzip", n_branches=10, warmup=10, seed=1)
        with pytest.raises(ValueError):
            SimJob(
                benchmark="gzip", n_branches=10, warmup=0, seed=1,
                backend="turbo",
            )

    def test_job_is_picklable_and_hashable(self):
        assert pickle.loads(pickle.dumps(JOB)) == JOB
        assert JOB in {JOB}


class TestLruBudget:
    def test_evicts_oldest_over_budget(self):
        lru = _LruBudget(budget=10)
        lru.put("a", 1, cost=4)
        lru.put("b", 2, cost=4)
        lru.put("c", 3, cost=4)  # spends 12 > 10: evicts "a"
        assert lru.get("a") is None
        assert lru.get("b") == 2
        assert lru.evictions == 1

    def test_get_refreshes_recency(self):
        lru = _LruBudget(budget=10)
        lru.put("a", 1, cost=4)
        lru.put("b", 2, cost=4)
        assert lru.get("a") == 1  # "b" is now the LRU entry
        lru.put("c", 3, cost=4)
        assert lru.get("b") is None
        assert lru.get("a") == 1

    def test_oversized_entry_still_admitted(self):
        lru = _LruBudget(budget=10)
        lru.put("big", 1, cost=100)
        assert lru.get("big") == 1


class TestReplayCacheDisk:
    def test_roundtrip(self, tmp_path):
        outcome = Engine().replay(JOB)
        cache = ReplayCache(disk_dir=str(tmp_path))
        cache.put(JOB.fingerprint, outcome)
        cache.clear()  # drop memory; the disk layer must serve it

        restored = cache.get(JOB.fingerprint)
        assert restored is not None
        assert restored.from_cache
        assert cache.stats.disk_hits == 1
        assert restored.events == outcome.events
        assert restored.result.branches == outcome.result.branches

    def test_miss_on_empty_dir(self, tmp_path):
        cache = ReplayCache(disk_dir=str(tmp_path))
        assert cache.get(JOB.fingerprint) is None
        assert cache.stats.misses == 1

    def test_engine_level_disk_reuse(self, tmp_path):
        a = Engine(cache_dir=str(tmp_path))
        first = a.replay(JOB)
        b = Engine(cache_dir=str(tmp_path))  # separate engine, same dir
        second = b.replay(JOB)
        assert second.from_cache
        assert b.stats.replay.disk_hits == 1
        assert second.events == first.events


class TestTraceCache:
    def test_same_key_same_object(self):
        cache = TraceCache()
        assert cache.get("gzip", 2_000, 1) is cache.get("gzip", 2_000, 1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_keys(self):
        cache = TraceCache()
        assert cache.get("gzip", 2_000, 1) is not cache.get("gzip", 2_000, 2)


class TestEngineRun:
    def test_dedup_executes_once(self):
        engine = Engine()
        outcomes = engine.run([JOB, JOB, JOB])
        assert engine.stats.executed == 1
        assert len(outcomes) == 3
        assert outcomes[0].events is outcomes[1].events

    def test_results_in_submission_order(self):
        engine = Engine()
        jobs = [JOB.with_(seed=s) for s in (3, 1, 2)]
        outcomes = engine.run(jobs)
        again = engine.run(list(reversed(jobs)))
        assert [o.result.branches for o in outcomes] == [
            o.result.branches for o in reversed(again)
        ]
        assert all(o.from_cache for o in again)

    def test_outcome_unpacks_as_events_result(self):
        events, result = Engine().replay(JOB)
        assert len(events) == JOB.n_branches - JOB.warmup
        assert result.branches == len(events)

    def test_serial_parallel_cached_identical(self):
        jobs = [
            JOB.with_(estimator=EstimatorSpec.of("perceptron", threshold=t))
            for t in (0, -25)
        ]
        serial = Engine().run(jobs)
        parallel_engine = Engine(max_workers=2)
        parallel = parallel_engine.run(jobs)
        assert parallel_engine.stats.parallel_executed == len(jobs)
        cached = parallel_engine.run(jobs)
        assert all(o.from_cache for o in cached)
        for s, p, c in zip(serial, parallel, cached):
            assert s.events == p.events == c.events
            assert (
                s.result.metrics.overall
                == p.result.metrics.overall
                == c.result.metrics.overall
            )

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            Engine(max_workers=0)
        with pytest.raises(ValueError):
            Engine().run([JOB], max_workers=0)


class TestRunnerFlags:
    def test_branches_wins_over_quick(self):
        from repro.experiments.runner import resolve_settings

        assert resolve_settings(quick=True).n_branches == 30_000
        settings = resolve_settings(quick=True, branches=9_000)
        assert settings.n_branches == 9_000
        assert settings.warmup == 3_000
        # --quick still contributed nothing else; defaults otherwise.
        assert settings.seed == resolve_settings().seed

    def test_extensions_append_to_selection(self):
        from repro.experiments.runner import (
            EXTENSION_EXPERIMENTS,
            PAPER_EXPERIMENTS,
            select_experiments,
        )

        assert select_experiments() == list(PAPER_EXPERIMENTS)
        both = select_experiments(extensions=True)
        assert both == list(PAPER_EXPERIMENTS) + list(EXTENSION_EXPERIMENTS)
        explicit = select_experiments(["smt", "table2"], extensions=True)
        assert explicit[:2] == ["smt", "table2"]
        assert "smt" not in explicit[2:]  # no repeats
        assert set(EXTENSION_EXPERIMENTS) <= set(explicit)

    def test_unknown_selection(self):
        from repro.experiments.runner import select_experiments

        with pytest.raises(KeyError):
            select_experiments(["bogus"])

    def test_run_report_mapping(self):
        from repro.experiments.runner import ExperimentRecord, RunReport

        report = RunReport()
        report.add(
            ExperimentRecord(
                name="table2", result="r", seconds=1.0,
                stats=Engine().stats.snapshot(),
            )
        )
        assert "table2" in report
        assert report["table2"] == "r"
        assert list(report) == ["table2"]
        assert report.total_seconds == 1.0
        with pytest.raises(KeyError):
            report["nonesuch"]


class TestCorruptDiskCache:
    """A damaged disk entry must be dropped and recomputed, not raised."""

    def _plant(self, tmp_path, payload: bytes) -> ReplayCache:
        cache = ReplayCache(disk_dir=str(tmp_path))
        path = cache._disk_path(JOB.fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(payload)
        return cache

    def test_truncated_pickle_recovers(self, tmp_path, caplog):
        outcome = Engine().replay(JOB)
        good = pickle.dumps((outcome.events, outcome.result))
        cache = self._plant(tmp_path, good[: len(good) // 2])
        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            assert cache.get(JOB.fingerprint) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert any("corrupt" in r.message for r in caplog.records)

    def test_wrong_structure_recovers(self, tmp_path):
        cache = self._plant(tmp_path, pickle.dumps("not an outcome tuple"))
        assert cache.get(JOB.fingerprint) is None
        assert cache.stats.corrupt == 1

    def test_engine_recomputes_and_repairs(self, tmp_path, caplog):
        # Warm a valid cache dir, then truncate the entry on disk.
        warm = Engine(cache_dir=str(tmp_path))
        expected = warm.replay(JOB)
        path = warm._replays._disk_path(JOB.fingerprint)
        with open(path, "rb") as fh:
            good = fh.read()
        with open(path, "wb") as fh:
            fh.write(good[: len(good) // 3])

        engine = Engine(cache_dir=str(tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            outcome = engine.replay(JOB)
        assert not outcome.from_cache  # recomputed, not served corrupt
        assert outcome.events == expected.events
        assert engine.stats.replay.corrupt == 1
        # The corrupt file was unlinked so the recompute re-wrote it;
        # a third engine must now get a clean disk hit.
        again = Engine(cache_dir=str(tmp_path)).replay(JOB)
        assert again.from_cache
        assert again.events == expected.events

    def test_corrupt_count_in_format(self, tmp_path):
        cache = self._plant(tmp_path, b"\x80garbage")
        cache.get(JOB.fingerprint)
        assert "corrupt" in cache.stats.format()


class TestDeterminismExtended:
    """Serial == parallel == cached beyond front-end metrics.

    The engine contract says *everything derived from an outcome* is
    reproducible; SMT and energy-model numbers exercise the jitter
    hashing and uops accounting on top of the raw event streams.
    """

    JOBS = [
        SimJob(
            benchmark=benchmark,
            n_branches=3_000,
            warmup=1_000,
            seed=1,
            estimator=EstimatorSpec.of("perceptron", threshold=0),
            policy=GATING_POLICY,
        )
        for benchmark in ("gzip", "twolf")
    ]

    @staticmethod
    def _derived(outcomes):
        from repro.pipeline.config import STANDARD_20X4
        from repro.pipeline.energy import EnergyModel
        from repro.pipeline.smt import SmtSimulator

        config = STANDARD_20X4.with_gating(1)
        events_a, events_b = (o.events for o in outcomes)
        smt = SmtSimulator(config, gate_yields=True).simulate(
            events_a, events_b
        )
        single = SmtSimulator(config, gate_yields=True).simulate(events_a)
        stats = Engine.simulate(events_a, config)
        energy = EnergyModel().evaluate(stats, estimator_active=True)
        return {
            "smt_cycles": smt.total_cycles,
            "smt_correct": smt.combined_correct_uops,
            "smt_wrong": smt.combined_wrong_path_uops,
            "smt_gated": tuple(t.gated_cycles for t in smt.threads),
            "single_cycles": single.total_cycles,
            "sim": stats.as_dict(),
            "energy": (energy.total, energy.energy_delay_product),
        }

    def test_smt_and_energy_serial_parallel_cached(self):
        serial = self._derived(Engine().run(self.JOBS))
        parallel_engine = Engine(max_workers=2)
        parallel = self._derived(parallel_engine.run(self.JOBS))
        assert parallel_engine.stats.parallel_executed == len(self.JOBS)
        cached_outcomes = parallel_engine.run(self.JOBS)
        assert all(o.from_cache for o in cached_outcomes)
        cached = self._derived(cached_outcomes)
        assert serial == parallel == cached

    def test_smt_and_energy_disk_cache_roundtrip(self, tmp_path):
        direct = self._derived(Engine(cache_dir=str(tmp_path)).run(self.JOBS))
        revived_outcomes = Engine(cache_dir=str(tmp_path)).run(self.JOBS)
        assert all(o.from_cache for o in revived_outcomes)
        assert self._derived(revived_outcomes) == direct

    def test_canonical_metrics_digest_stable(self):
        fresh, = Engine().run([self.JOBS[0]])
        cached, = Engine().run([self.JOBS[0]])
        assert fresh.metrics_digest() == cached.metrics_digest()
        metrics = fresh.canonical_metrics()
        assert all(isinstance(v, int) for v in metrics.values())
        assert metrics["branches"] == fresh.result.branches

"""Speculative shard scheduling: guess/guard/abort must be invisible.

The property under test is the one the ``speculative`` verify layer
enforces on the full matrix: whatever the guesses were -- honest, stale,
or adversarially corrupted at arbitrary joins -- the speculative shard
scheduler produces events, canonical metrics and final component states
bit-identical to the sequential chain (and hence to the monolithic
replay).  The hypothesis suite drives random corruption patterns through
:class:`~repro.engine.speculation.CorruptingGuessProvider`; the storm
test makes *every* guess wrong and checks both the outcome and the
counter accounting.

Also covered here because they are what makes speculation useful across
runs: chain-record persistence (survival of ``clear()``, longer-run
protection, disk round-trips), the segment cache's disk budget and the
orphan sweep, ``segtrace:`` job sources, and the fast streaming path.
"""

import os
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.engine import (
    ChainGuessProvider,
    ChainRecord,
    CorruptingGuessProvider,
    Engine,
    ReplayCheckpoint,
    SegmentPlan,
    SequentialChain,
    SimJob,
    SpeculativeShardScheduler,
    canonical_metrics,
    replay_segmented,
    select_scheduler,
)
from repro.engine.cache import SegmentCache
from repro.engine.scheduler import CHAIN_SCHEMA, record_chain
from repro.trace.benchmarks import generate_benchmark_trace
from repro.trace.segments import (
    SegmentedTrace,
    save_segmented,
    sweep_orphan_segments,
)
from repro.verify.matrix import CASES

N_BRANCHES = 2_000
SEGMENT_SIZE = 500  # 4 segments over the 2k-branch trace


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture(scope="module")
def trace():
    return generate_benchmark_trace("gzip", n_branches=N_BRANCHES, seed=11)


def _job(**overrides):
    case = CASES[0]
    base = dict(
        benchmark="gzip",
        n_branches=N_BRANCHES,
        warmup=0,
        seed=11,
        predictor=case.predictor,
        estimator=case.estimator,
        policy=case.policy,
        collect_outputs=True,
        segment_size=SEGMENT_SIZE,
    )
    base.update(overrides)
    return SimJob(**base)


def _seeded_cache(job, trace):
    """Sequential baseline: returns (cache-with-chain, expected outcome)."""
    cache = SegmentCache()
    outcome, checkpoint = replay_segmented(
        job, trace, cache=cache, scheduler=SequentialChain()
    )
    cache.clear()  # events gone, chain survives: shards must re-execute
    return cache, outcome, checkpoint


def _chain_record(cache, job):
    record = cache.get_chain(SegmentPlan.for_job(job).chain_key)
    assert record is not None, "sequential run must record its chain"
    return record


@pytest.fixture(scope="module")
def baselines(trace):
    """Per-segment-size sequential oracles, computed once for the module.

    Maps size -> (chain record, expected events, expected metrics,
    expected final digest); each hypothesis example replays against a
    fresh cache seeded only with the recorded chain.
    """
    out = {}
    for size in (256, 500, 997):
        job = _job(segment_size=size)
        cache, outcome, checkpoint = _seeded_cache(job, trace)
        out[size] = (
            _chain_record(cache, job),
            outcome.events,
            canonical_metrics(outcome.result),
            checkpoint.digest,
        )
    return out


class TestGuardProperty:
    """Random corruption at random joins converges to sequential output."""

    @given(
        corrupt=st.frozensets(st.integers(min_value=0, max_value=7)),
        size=st.sampled_from((256, 500, 997)),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_corrupted_guesses_never_change_the_outcome(
        self, trace, baselines, corrupt, size
    ):
        record, events, metrics, digest = baselines[size]
        job = _job(segment_size=size)
        scheduler = SpeculativeShardScheduler(
            max_workers=2,
            guess_provider=CorruptingGuessProvider(
                ChainGuessProvider(record), corrupt=corrupt
            ),
        )
        outcome, checkpoint = replay_segmented(
            job, trace, cache=SegmentCache(), scheduler=scheduler
        )
        assert outcome.events == events
        assert canonical_metrics(outcome.result) == metrics
        assert checkpoint.digest == digest


class TestMispeculationStorm:
    def test_every_guess_wrong_still_bit_identical(self, trace):
        job = _job()
        cache, expected, expected_cp = _seeded_cache(job, trace)
        record = _chain_record(cache, job)

        tel = telemetry.enable()
        tel.reset()
        scheduler = SpeculativeShardScheduler(
            max_workers=2,
            guess_provider=CorruptingGuessProvider(
                ChainGuessProvider(record), corrupt=lambda i: True
            ),
        )
        outcome, checkpoint = replay_segmented(
            job, trace, cache=cache, scheduler=scheduler
        )
        assert outcome.events == expected.events
        assert checkpoint.digest == expected_cp.digest

        # 4 segments: segment 0 runs from the exact initial state (not a
        # guess); the other 3 are guessed, all corrupted, all aborted,
        # all repaired sequentially at their joins.
        assert tel.counter("speculation_guessed_total").value == 3
        assert tel.counter("speculation_validated_total").value == 0
        assert tel.counter("speculation_aborted_total").value == 3
        assert tel.counter("speculation_requeued_total").value == 3
        assert (
            tel.counter("engine_segments_total", backend="reference").value
            == 4
        )


class TestCounterAccounting:
    def test_warm_rerun_validates_every_guess(self, trace):
        job = _job()
        cache, expected, expected_cp = _seeded_cache(job, trace)

        tel = telemetry.enable()
        tel.reset()
        scheduler = SpeculativeShardScheduler(max_workers=2)
        outcome, checkpoint = replay_segmented(
            job, trace, cache=cache, scheduler=scheduler
        )
        assert outcome.events == expected.events
        assert checkpoint.digest == expected_cp.digest

        guessed = tel.counter("speculation_guessed_total").value
        validated = tel.counter("speculation_validated_total").value
        aborted = tel.counter("speculation_aborted_total").value
        assert guessed == 3
        assert (validated, aborted) == (3, 0)
        assert guessed == validated + aborted
        assert tel.counter("speculation_requeued_total").value == 0

    def test_mixed_corruption_sums_consistently(self, trace):
        job = _job()
        cache, expected, _ = _seeded_cache(job, trace)
        record = _chain_record(cache, job)

        tel = telemetry.enable()
        tel.reset()
        scheduler = SpeculativeShardScheduler(
            max_workers=2,
            guess_provider=CorruptingGuessProvider(
                ChainGuessProvider(record), corrupt=(1, 3)
            ),
        )
        outcome, _ = replay_segmented(
            job, trace, cache=cache, scheduler=scheduler
        )
        assert outcome.events == expected.events
        guessed = tel.counter("speculation_guessed_total").value
        validated = tel.counter("speculation_validated_total").value
        aborted = tel.counter("speculation_aborted_total").value
        assert guessed == validated + aborted == 3
        assert aborted == 2  # segments 1 and 3 were fed garbage
        assert tel.counter("speculation_requeued_total").value == aborted

    def test_cold_run_never_speculates(self, trace):
        job = _job()
        tel = telemetry.enable()
        tel.reset()
        # Empty cache: no chain record, so even the speculative
        # scheduler delegates to the sequential chain outright.
        scheduler = SpeculativeShardScheduler(max_workers=2)
        replay_segmented(job, trace, cache=SegmentCache(), scheduler=scheduler)
        assert tel.counter("speculation_guessed_total").value == 0
        assert tel.counter("speculation_requeued_total").value == 0


class TestSchedulerSelection:
    def test_off_knobs_pin_sequential(self):
        job = _job()
        assert isinstance(select_scheduler(job, workers=1), SequentialChain)
        assert isinstance(
            select_scheduler(job, workers=4, speculation="off"),
            SequentialChain,
        )
        assert isinstance(
            select_scheduler(job.with_(speculation="off"), workers=4),
            SequentialChain,
        )

    def test_single_segment_pins_sequential(self):
        job = _job(segment_size=N_BRANCHES)
        assert isinstance(select_scheduler(job, workers=4), SequentialChain)

    def test_auto_with_workers_goes_speculative(self):
        scheduler = select_scheduler(_job(), workers=4)
        assert isinstance(scheduler, SpeculativeShardScheduler)
        assert scheduler.max_workers == 4

    def test_speculation_joins_job_fingerprint(self):
        job = _job()
        assert job.with_(speculation="off").fingerprint != job.fingerprint


class TestChainRecord:
    def _record(self, n, size=SEGMENT_SIZE):
        checkpoints = tuple(
            ReplayCheckpoint((k + 1) * size, None, None, k, ())
            for k in range(n)
        )
        return ChainRecord(
            schema=CHAIN_SCHEMA,
            segment_size=size,
            fingerprints=tuple(f"fp{k}" for k in range(n)),
            checkpoints=checkpoints,
        )

    def test_extends_is_prefix_comparison(self):
        short, long = self._record(2), self._record(4)
        assert long.extends(short)
        assert long.extends(long)
        assert not short.extends(long)
        assert not self._record(4, size=250).extends(short)

    def test_checkpoint_at_indexes_uniform_cuts(self):
        record = self._record(4)
        assert record.checkpoint_at(SEGMENT_SIZE).position == SEGMENT_SIZE
        assert record.checkpoint_at(0) is None
        assert record.checkpoint_at(SEGMENT_SIZE + 1) is None
        assert record.checkpoint_at(5 * SEGMENT_SIZE) is None

    def test_shorter_rerun_does_not_clobber_longer_chain(self, trace):
        job = _job()
        cache = SegmentCache()
        replay_segmented(job, trace, cache=cache, scheduler=SequentialChain())
        long_record = _chain_record(cache, job)

        # A shorter window of the same configuration shares the chain
        # key (n_branches is excluded); re-running it must keep the
        # longer record's guesses intact.
        short = job.with_(n_branches=N_BRANCHES // 2)
        replay_segmented(
            short,
            trace.slice(0, len(trace) // 2),
            cache=cache,
            scheduler=SequentialChain(),
        )
        kept = _chain_record(cache, job)
        assert kept.fingerprints == long_record.fingerprints

    def test_chain_survives_clear_and_disk_roundtrip(self, trace, tmp_path):
        job = _job()
        cache = SegmentCache(disk_dir=str(tmp_path))
        replay_segmented(job, trace, cache=cache, scheduler=SequentialChain())
        key = SegmentPlan.for_job(job).chain_key

        cache.clear()
        assert cache.get_chain(key) is not None

        # A fresh cache over the same directory reads the pickled chain.
        rehydrated = SegmentCache(disk_dir=str(tmp_path))
        record = rehydrated.get_chain(key)
        assert isinstance(record, ChainRecord)
        assert record.schema == CHAIN_SCHEMA
        assert len(record.fingerprints) == 4

    def test_record_chain_ignores_stale_schema(self):
        cache = SegmentCache()
        plan = SegmentPlan.for_job(_job())
        stale = ChainRecord(
            schema=CHAIN_SCHEMA + 1,
            segment_size=SEGMENT_SIZE,
            fingerprints=("x",),
            checkpoints=(ReplayCheckpoint(SEGMENT_SIZE, None, None, 0, ()),),
        )
        cache.put_chain(plan.chain_key, stale)
        scheduler = SpeculativeShardScheduler(max_workers=2)
        assert scheduler._resolve_provider(plan, cache) is None


class TestDiskHygiene:
    def _fill(self, cache, n, payload_events=128):
        # Distinct strings per entry: pickle memoizes repeated objects,
        # so a shared payload would serialize to almost nothing.
        for k in range(n):
            events = [f"{k:03d}-{i:03d}" * 8 for i in range(payload_events)]
            cache.put(f"fp{k:02d}", events, ReplayCheckpoint.initial())

    def test_disk_budget_evicts_lru(self, tmp_path):
        tel = telemetry.enable()
        tel.reset()
        cache = SegmentCache(
            event_budget=1, disk_dir=str(tmp_path), disk_budget_bytes=20_000
        )
        self._fill(cache, 8)
        assert cache.disk_evictions > 0
        assert (
            tel.counter("cache_segment_disk_evictions_total").value
            == cache.disk_evictions
        )
        segment_dir = tmp_path / "segments"
        kept = [p for p in segment_dir.iterdir() if p.is_file()]
        assert sum(p.stat().st_size for p in kept) <= 20_000
        # Most-recently-written entries survive; the oldest went first.
        assert cache.get("fp07") is not None

    def test_chain_files_exempt_from_budget(self, tmp_path):
        cache = SegmentCache(
            event_budget=1, disk_dir=str(tmp_path), disk_budget_bytes=20_000
        )
        record = ChainRecord(
            schema=CHAIN_SCHEMA,
            segment_size=SEGMENT_SIZE,
            fingerprints=("fp",),
            checkpoints=(ReplayCheckpoint(SEGMENT_SIZE, None, None, 0, ()),),
        )
        cache.put_chain("somekey", record)
        self._fill(cache, 8)
        assert cache.get_chain("somekey") is not None
        assert (tmp_path / "segments" / "chains" / "somekey.pkl").exists()

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentCache(disk_dir=str(tmp_path), disk_budget_bytes=0)

    def test_corrupt_chain_entry_is_dropped(self, tmp_path):
        cache = SegmentCache(disk_dir=str(tmp_path))
        chain_dir = tmp_path / "segments" / "chains"
        chain_dir.mkdir(parents=True)
        (chain_dir / "badkey.pkl").write_bytes(b"not a pickle")
        assert cache.get_chain("badkey") is None
        assert not (chain_dir / "badkey.pkl").exists()


class TestOrphanSweep:
    def test_sweep_removes_unindexed_payloads(self, trace, tmp_path):
        pytest.importorskip("numpy")
        directory = str(tmp_path / "seg")
        save_segmented(trace, directory, segment_size=SEGMENT_SIZE)
        stray = os.path.join(directory, "segment-9999.npz")
        with open(stray, "wb") as handle:
            handle.write(b"orphan")

        tel = telemetry.enable()
        tel.reset()
        removed = sweep_orphan_segments(directory)
        assert removed == 1
        assert not os.path.exists(stray)
        assert tel.counter("trace_segment_orphans_removed_total").value == 1
        # Indexed payloads are untouched and the trace still reads.
        assert len(SegmentedTrace(directory)) == N_BRANCHES

    def test_save_sweeps_crashed_writer_leftovers(self, trace, tmp_path):
        pytest.importorskip("numpy")
        directory = str(tmp_path / "seg")
        os.makedirs(directory)
        stray = os.path.join(directory, "segment-0042.npz")
        with open(stray, "wb") as handle:
            handle.write(b"crashed writer leftovers")
        save_segmented(trace, directory, segment_size=SEGMENT_SIZE)
        assert not os.path.exists(stray)


class TestSegtraceJobSource:
    @pytest.fixture()
    def recorded(self, trace, tmp_path):
        pytest.importorskip("numpy")
        return save_segmented(
            trace, str(tmp_path / "seg"), segment_size=SEGMENT_SIZE
        )

    def test_job_token_pins_content(self, recorded):
        token = recorded.job_token()
        assert token.startswith("segtrace:")
        assert recorded.content_digest[:16] in token

    def test_engine_replays_from_token(self, recorded):
        token = recorded.job_token()
        engine = Engine(max_workers=1)
        from_token = engine.replay(_job(benchmark=token, segment_size=None))
        generated = engine.replay(_job(segment_size=None))
        assert from_token.events == generated.events
        assert canonical_metrics(from_token.result) == canonical_metrics(
            generated.result
        )

    def test_prefix_view_bounds_job_window(self, recorded):
        token = recorded.job_token()
        engine = Engine(max_workers=1)
        short = engine.replay(
            _job(benchmark=token, n_branches=700, segment_size=None)
        )
        full = engine.replay(_job(segment_size=None))
        assert short.events == full.events[:700]

    def test_digest_mismatch_rejected(self, recorded):
        bad = "segtrace:" + "0" * 16 + ":" + recorded.directory
        with pytest.raises(ValueError, match="digest"):
            Engine(max_workers=1).replay(
                _job(benchmark=bad, segment_size=None)
            )

    def test_oversized_window_rejected(self, recorded):
        with pytest.raises(ValueError):
            Engine(max_workers=1).replay(
                _job(
                    benchmark=recorded.job_token(),
                    n_branches=N_BRANCHES + 1,
                    segment_size=None,
                )
            )


class TestFastStream:
    def test_fast_stream_matches_reference(self):
        pytest.importorskip("numpy")
        engine = Engine(max_workers=1)
        ref = engine.stream(_job(segment_size=None), segment_size=600)
        tel = telemetry.enable()
        tel.reset()
        fast = engine.stream(
            _job(backend="fast", segment_size=None), segment_size=600
        )
        assert canonical_metrics(fast) == canonical_metrics(ref)
        assert tel.counter("engine_stream_segments_total").value == 4
        assert tel.counter("fastpath_fallbacks_total").value == 0

    def test_midstream_fallback_is_bit_identical(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro import fastpath
        from repro.fastpath import driver

        real = driver.replay_segment
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise fastpath.FastPathUnsupported("injected mid-stream")
            return real(*args, **kwargs)

        monkeypatch.setattr(driver, "replay_segment", flaky)
        engine = Engine(max_workers=1)
        tel = telemetry.enable()
        tel.reset()
        fast = engine.stream(
            _job(backend="fast", segment_size=None), segment_size=600
        )
        fallbacks = tel.counter(
            "fastpath_fallbacks_total", reason="runtime"
        ).value
        telemetry.disable()
        ref = engine.stream(_job(segment_size=None), segment_size=600)
        assert canonical_metrics(fast) == canonical_metrics(ref)
        assert calls["n"] == 3  # two fast segments, then the injection
        assert fallbacks == 1

"""Property-based tests for sweep expansion (hypothesis).

The sweep layer's correctness rests on three invariants the examples
in test_sweeps.py cannot cover exhaustively:

- expansion deduplicates by fingerprint: however many experiments or
  instances request the same replay, the DAG holds it once;
- the DAG is acyclic and its topological order respects every edge;
- replay outcomes are independent of execution order and of the
  ``--jobs`` fan-out level, so resuming a sweep in any order is safe.

Execution examples run at tiny sizing (single benchmark, 2k branches)
to keep the suite in tier-1 budget.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.engine import Engine
from repro.experiments.common import ExperimentSettings
from repro.sweeps import SweepDag, SweepInstance, SweepSpec

TINY = ExperimentSettings(n_branches=2_000, warmup=600, benchmarks=("gzip",))

#: Cheap-to-plan experiments with distinct job shapes (shared
#: baselines, ladders, cross-experiment reuse via figure8/figure9).
PLANNABLE = (
    "table2", "table3", "figure4_5", "figure8", "figure9",
    "latency", "oracle_bound",
)

experiment_lists = st.lists(
    st.sampled_from(PLANNABLE), min_size=1, max_size=4, unique=True
)
seed_lists = st.lists(
    st.integers(min_value=1, max_value=3), min_size=1, max_size=2, unique=True
)


def _spec(experiments, seeds):
    return SweepSpec(
        name="prop",
        description="",
        experiments=tuple(experiments),
        instances=tuple(
            SweepInstance(name=f"seed{seed}", settings=(("seed", seed),))
            for seed in seeds
        ),
    )


class TestExpansion:
    @given(experiments=experiment_lists, seeds=seed_lists)
    @settings(max_examples=25, deadline=None)
    def test_identical_fingerprints_expand_to_one_job(
        self, experiments, seeds
    ):
        dag = SweepDag.from_spec(_spec(experiments, seeds), TINY)
        fingerprints = [node.job.fingerprint for node in dag.jobs.values()]
        assert len(fingerprints) == len(set(fingerprints))
        assert dag.submitted_jobs >= len(dag.jobs)
        # Node keys agree with the jobs they hold.
        for fp, node in dag.jobs.items():
            assert node.fingerprint == fp == node.job.fingerprint

    @given(experiments=experiment_lists, seeds=seed_lists)
    @settings(max_examples=25, deadline=None)
    def test_duplicating_instances_adds_no_jobs(self, experiments, seeds):
        base = _spec(experiments, seeds)
        doubled = SweepSpec(
            name="prop",
            description="",
            experiments=base.experiments,
            instances=base.instances + tuple(
                SweepInstance(name=f"again{i.name}", settings=i.settings)
                for i in base.instances
            ),
        )
        assert len(SweepDag.from_spec(doubled, TINY).jobs) == len(
            SweepDag.from_spec(base, TINY).jobs
        )

    @given(experiments=experiment_lists, seeds=seed_lists)
    @settings(max_examples=25, deadline=None)
    def test_dag_is_acyclic_and_order_respects_edges(
        self, experiments, seeds
    ):
        dag = SweepDag.from_spec(_spec(experiments, seeds), TINY)
        order = dag.topological_order()  # raises on a cycle
        position = {node: i for i, node in enumerate(order)}
        for src, dst in dag.edges():
            assert position[src] < position[dst]
        expected = set(dag.jobs) | {n.key for n in dag.experiments}
        assert set(order) == expected


class TestExecutionIndependence:
    @given(
        experiments=st.lists(
            st.sampled_from(("table2", "figure8", "latency")),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        data=st.data(),
    )
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_order_and_fanout_do_not_change_outcomes(
        self, experiments, data
    ):
        dag = SweepDag.from_spec(_spec(experiments, [1]), TINY)
        jobs = dag.job_list()
        shuffled = data.draw(st.permutations(jobs))

        serial = Engine(max_workers=1).run(jobs)
        fanned = Engine(max_workers=2).run(shuffled)

        by_fp_serial = {
            job.fingerprint: outcome.metrics_digest()
            for job, outcome in zip(jobs, serial)
        }
        by_fp_fanned = {
            job.fingerprint: outcome.metrics_digest()
            for job, outcome in zip(shuffled, fanned)
        }
        assert by_fp_serial == by_fp_fanned

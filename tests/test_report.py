"""Unit tests for the Markdown report generator."""

import pytest

from repro.analysis.report import markdown_table, render_report, write_report


class FakeRow:
    def __init__(self, **kw):
        self._kw = kw

    def as_dict(self):
        return dict(self._kw)


class RowResult:
    def __init__(self, rows):
        self.rows = rows


class FormatOnlyResult:
    def format(self):
        return "line one\nline two"


class TestMarkdownTable:
    def test_basic(self):
        text = markdown_table([{"a": 1, "b": "x"}, {"a": 2.5, "b": "y"}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 2.50 | y |" in lines

    def test_column_selection(self):
        text = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert text.splitlines()[0] == "| b |"

    def test_empty(self):
        assert markdown_table([]) == "*(no rows)*"

    def test_missing_keys(self):
        text = markdown_table([{"a": 1}], columns=["a", "b"])
        assert text.splitlines()[-1] == "| 1 |  |"


class TestRenderReport:
    def test_sections(self):
        report = render_report(
            {
                "exp_a": RowResult([FakeRow(x=1)]),
                "exp_b": FormatOnlyResult(),
            },
            title="T",
            preamble="intro",
        )
        assert report.startswith("# T")
        assert "intro" in report
        assert "## exp_a" in report
        assert "| x |" in report
        assert "## exp_b" in report
        assert "line one" in report

    def test_unrenderable(self):
        report = render_report({"weird": object()})
        assert "unrenderable" in report

    def test_real_experiment(self):
        from repro.experiments import table2
        from repro.experiments.common import ExperimentSettings

        result = table2.run(
            ExperimentSettings(n_branches=4000, warmup=1200,
                               benchmarks=("gzip",))
        )
        report = render_report({"table2": result})
        assert "| benchmark |" in report


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "r.md")
        write_report({"a": RowResult([FakeRow(v=3)])}, path, title="R")
        text = open(path).read()
        assert text.startswith("# R")
        assert "| v |" in text

"""Fast-backend equivalence: every registered kind, branch for branch.

The fast backend is only allowed to exist because it is bit-identical
to the reference front end.  These tests enforce that over the whole
verification matrix (every registered predictor, estimator and policy
kind) on two kinds of traces:

- a *calibrated* benchmark trace, where structures warm up and the
  perceptrons spend most of their time away from the weight rails;
- an *adversarial* trace built to alias heavily in every table (few
  static pcs, giant and dense strides, noisy directions), which pins
  weights to the rails and exercises the SWAR slow path, counter
  saturation and fusion disagreement far more often than any benchmark.

Divergence anywhere -- prediction, confidence signal, policy action,
aggregate metrics or final ``state_canonical()`` digests -- is a
failure naming the first differing branch.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro import fastpath
from repro.engine import Engine, EstimatorSpec, PredictorSpec, SimJob
from repro.engine.engine import _replay_trace
from repro.trace.benchmarks import generate_benchmark_trace
from repro.trace.record import BranchRecord, Trace
from repro.verify.fastpath import run_fastpath_differential
from repro.verify.matrix import CASES, PROFILES, jobs_for_profile

CASE_IDS = [case.label for case in CASES]


@pytest.fixture(scope="module")
def calibrated_trace():
    return generate_benchmark_trace("gzip", n_branches=4_000, seed=11)


@pytest.fixture(scope="module")
def adversarial_trace():
    """Aliasing-heavy stress trace (not derived from any benchmark).

    96 static branches: half at a 128KiB stride (collides after the
    fold in gshare/JRS-sized tables), half densely packed (collides
    under the modulo indexing of the perceptron tables).  Directions
    mix noise with a pc-correlated pattern so estimators neither
    converge nor give up.
    """
    rng = random.Random(0xA11A5)
    pcs = [0x40_0000 + i * (1 << 17) for i in range(48)]
    pcs += [0x40_0000 + i * 4 for i in range(48)]
    records = []
    for i in range(3_500):
        pc = pcs[rng.randrange(len(pcs))]
        if rng.random() < 0.35:
            taken = rng.random() < 0.5
        else:
            taken = ((pc >> 7) ^ i) & 1 == 0
        records.append(
            BranchRecord(pc=pc, taken=taken, uops_before=rng.randrange(12))
        )
    return Trace(records, name="adversarial", seed=0)


@pytest.fixture(scope="module")
def engine():
    return Engine()


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
class TestMatrixEquivalence:
    """Branch-by-branch fast-vs-reference cross-check per matrix case."""

    def test_calibrated_trace(self, case, calibrated_trace):
        report = run_fastpath_differential(
            calibrated_trace,
            case.predictor,
            case.estimator,
            case.policy,
            label=case.label,
        )
        assert report.ok, report.format()

    def test_adversarial_trace(self, case, adversarial_trace):
        report = run_fastpath_differential(
            adversarial_trace,
            case.predictor,
            case.estimator,
            case.policy,
            label=case.label,
        )
        assert report.ok, report.format()


def _job(case, backend="reference"):
    return SimJob(
        benchmark="gzip",
        n_branches=5_000,
        warmup=1_500,
        seed=3,
        predictor=case.predictor,
        estimator=case.estimator,
        policy=case.policy,
        backend=backend,
    )


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_engine_outcomes_identical(engine, case):
    """Through the real engine, both backends produce the same outcome."""
    reference = engine.run([_job(case)])[0]
    fast = engine.run([_job(case, backend="fast")])[0]
    assert reference.backend == "reference"
    assert fast.backend == "fast"
    assert fast.canonical_metrics() == reference.canonical_metrics()
    assert fast.metrics_digest() == reference.metrics_digest()
    assert fast.events == reference.events


def test_every_matrix_job_is_supported():
    """No registered configuration may dodge the cross-check silently."""
    for label, job in jobs_for_profile(PROFILES["quick"]):
        assert fastpath.supports(job.with_(backend="fast")), (
            f"{label}: inside the verify matrix but outside the fast "
            f"backend's support matrix"
        )


#: Configurations the fast backend must decline (the engine then runs
#: the reference loop, whose constructors own the error reporting).
UNSUPPORTED_SPECS = {
    "pred-nonpow2-gshare": (
        "predictor", PredictorSpec.of("baseline_hybrid", gshare_entries=1000)
    ),
    "pred-history-65": (
        "predictor", PredictorSpec.of("baseline_hybrid", history_length=65)
    ),
    "pred-swar-overflow": (
        "predictor",
        PredictorSpec.of("gshare_perceptron_hybrid", perceptron_history=65),
    ),
    "pred-unknown-param": (
        "predictor", PredictorSpec.of("baseline_hybrid", bogus=3)
    ),
    "jrs-nonpow2": ("estimator", EstimatorSpec.of("jrs", entries=1000)),
    "jrs-threshold-0": ("estimator", EstimatorSpec.of("jrs", threshold=0)),
    "jrs-threshold-over-max": (
        "estimator", EstimatorSpec.of("jrs", counter_bits=2, threshold=9)
    ),
    "jrs-enhanced-history-64": (
        "estimator", EstimatorSpec.of("jrs", enhanced=True, history_length=64)
    ),
    "perceptron-entries-0": (
        "estimator", EstimatorSpec.of("perceptron", entries=0)
    ),
    "perceptron-negative-training": (
        "estimator", EstimatorSpec.of("perceptron", training_threshold=-1)
    ),
    "perceptron-tnt-strong": (
        "estimator", EstimatorSpec.of("perceptron", mode="tnt", strong_threshold=5)
    ),
    "perceptron-tnt-negative": (
        "estimator", EstimatorSpec.of("perceptron", mode="tnt", threshold=-5)
    ),
    "perceptron-strong-below-weak": (
        "estimator", EstimatorSpec.of("perceptron", strong_threshold=-200)
    ),
    "path-entries-0": (
        "estimator", EstimatorSpec.of("path_perceptron", table_entries=0)
    ),
    "path-weight-bits-1": (
        "estimator", EstimatorSpec.of("path_perceptron", weight_bits=1)
    ),
    "agreement-bad-mode": (
        "estimator",
        EstimatorSpec.of(
            "agreement",
            primary=EstimatorSpec.of("jrs"),
            secondary=EstimatorSpec.of("jrs"),
            mode="xor",
        ),
    ),
    "agreement-unsupported-component": (
        "estimator",
        EstimatorSpec.of(
            "agreement",
            primary=EstimatorSpec.of("jrs", entries=1000),
            secondary=EstimatorSpec.of("jrs"),
        ),
    ),
    "cascade-negative-band": (
        "estimator",
        EstimatorSpec.of(
            "cascade",
            primary=EstimatorSpec.of("jrs"),
            secondary=EstimatorSpec.of("jrs"),
            neutral_band=-1,
        ),
    ),
}


@pytest.mark.parametrize(
    "which, spec", UNSUPPORTED_SPECS.values(), ids=UNSUPPORTED_SPECS.keys()
)
def test_out_of_matrix_specs_are_declined(which, spec):
    job = SimJob(
        benchmark="gzip", n_branches=100, warmup=0, seed=1, backend="fast"
    ).with_(**{which: spec})
    assert not fastpath.supports(job)


def test_unsupported_spec_falls_back_to_reference(engine):
    # 12-bit weights at history 40 overflow the 16-bit SWAR lanes, so
    # the fast backend must decline and the engine must quietly run the
    # reference loop instead -- with identical results.
    spec = EstimatorSpec.of("perceptron", history_length=40, weight_bits=12)
    job = SimJob(
        benchmark="gzip",
        n_branches=3_000,
        warmup=1_000,
        seed=3,
        estimator=spec,
        backend="fast",
    )
    assert not fastpath.supports(job)
    fast = engine.run([job])[0]
    reference = engine.run([job.with_(backend="reference")])[0]
    assert fast.backend == "reference"
    assert fast.canonical_metrics() == reference.canonical_metrics()
    assert fast.events == reference.events


def test_oversized_pcs_fall_back_at_runtime():
    """Support is spec-level; absurd pcs are only visible per trace."""
    records = [
        BranchRecord(pc=(1 << 45) + 8 * i, taken=i % 3 != 0)
        for i in range(600)
    ]
    trace = Trace(records, name="oversized", seed=0)
    job = SimJob(
        benchmark="oversized", n_branches=600, warmup=100, seed=1,
        backend="fast",
    )
    assert fastpath.supports(job)
    with pytest.raises(fastpath.FastPathUnsupported):
        fastpath.replay(job, trace)
    outcome = _replay_trace(job, trace)
    assert outcome.backend == "reference"
    reference = _replay_trace(job.with_(backend="reference"), trace)
    assert outcome.canonical_metrics() == reference.canonical_metrics()
    assert outcome.events == reference.events

"""Smoke tests for the experiment harness (small settings).

Each experiment runs at a reduced size; the assertions check result
structure and the paper shapes that survive small workloads.
"""

import pytest

from repro.experiments import (
    figure4_5,
    figure6_7,
    figure8,
    figure9,
    latency,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import EXPERIMENTS, run_all

SMALL = ExperimentSettings(
    n_branches=10_000, warmup=3_500, benchmarks=("gzip", "mcf", "gcc")
)
TINY = ExperimentSettings(n_branches=6_000, warmup=2_000, benchmarks=("gzip",))


class TestSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(n_branches=0)
        with pytest.raises(ValueError):
            ExperimentSettings(n_branches=10, warmup=10)
        with pytest.raises(ValueError):
            ExperimentSettings(benchmarks=("nonesuch",))

    def test_scaled(self):
        scaled = SMALL.scaled(0.5)
        assert scaled.n_branches == 5_000
        assert scaled.benchmarks == SMALL.benchmarks


class TestTable2:
    def test_structure_and_shape(self):
        result = table2.run(SMALL)
        assert [r.benchmark for r in result.rows] == list(SMALL.benchmarks)
        mcf = next(r for r in result.rows if r.benchmark == "mcf")
        gcc = next(r for r in result.rows if r.benchmark == "gcc")
        assert mcf.mispredicts_per_kuop > gcc.mispredicts_per_kuop
        # Deep and wide machines waste more than the standard machine.
        for row in result.rows:
            assert row.uop_increase_pct["40c4w"] > row.uop_increase_pct["20c4w"]
        assert "Table 2" in result.format()


class TestTable3:
    def test_ladders_and_ratio(self):
        result = table3.run(SMALL)
        assert len(result.jrs) == 4
        assert len(result.perceptron) == 4
        jrs_specs = [p.spec_pct for p in result.jrs]
        assert jrs_specs == sorted(jrs_specs)  # lambda up -> coverage up
        perc_specs = [p.spec_pct for p in result.perceptron]
        assert perc_specs == sorted(perc_specs)  # lambda down -> coverage up
        assert result.accuracy_ratio() > 1.5
        assert "accuracy ratio" in result.format()


class TestTable4:
    def test_cells_and_dominance(self):
        result = table4.run(TINY)
        assert len(result.cells) == 12 + 4
        perc = result.cell("perceptron", 0, 1)
        jrs = result.cell("JRS", 7, 1)
        assert jrs.performance_loss_pct > perc.performance_loss_pct
        assert "Table 4" in result.format()

    def test_per_benchmark_detail(self):
        result = table4.run(TINY)
        assert set(result.per_benchmark) == set(TINY.benchmarks)


class TestTable5:
    def test_predictor_ladders(self):
        result = table5.run(TINY)
        assert len(result.rows_for("bimodal-gshare")) == 4
        assert len(result.rows_for("gshare-perceptron")) == 4
        assert "Table 5" in result.format()


class TestTable6:
    def test_configuration_ladder(self):
        result = table6.run(TINY)
        labels = [r.config.label for r in result.rows]
        assert labels[0] == "P128W8H32"
        assert "P128W4H32" in labels
        assert "Table 6" in result.format()

    def test_size_accounting(self):
        for _, cfg in table6.CONFIGURATIONS:
            assert cfg.size_kib in (2.0, 3.0, 4.0)


class TestDensities:
    def test_cic_density(self):
        result = figure4_5.run(SMALL, benchmark="gzip")
        assert result.scheme == "perceptron_cic"
        assert result.separation > 0  # MB sits right of CB
        assert "Figure 4/5" in result.format()

    def test_cic_regions_partition(self):
        result = figure4_5.run(SMALL, benchmark="gzip")
        reversal, gating, high = result.regions
        total = reversal.total + gating.total + high.total
        assert total == (
            result.density.correct_outputs.size
            + result.density.mispredicted_outputs.size
        )

    def test_tnt_density_has_no_crossover(self):
        result = figure6_7.run(SMALL, benchmark="gzip")
        assert result.mb_never_dominates
        assert "Figure 6/7" in result.format()

    def test_cic_separates_better_than_tnt(self):
        cic = figure4_5.run(SMALL, benchmark="gzip")
        # tnt CB/MB overlap: near-zero MB fraction must be small
        # relative to cic's gating region fraction.
        tnt = figure6_7.run(SMALL, benchmark="gzip")
        assert cic.regions[0].mispredict_fraction > tnt.near_zero_mb_fraction


class TestFigures89:
    def test_figure8_rows(self):
        result = figure8.run(TINY)
        assert [r.benchmark for r in result.rows] == list(TINY.benchmarks)
        assert result.machine_label == "40c/4w"
        assert "Figure 8/9" in result.format()

    def test_figure9_uses_wide_machine(self):
        result = figure9.run(TINY)
        assert result.machine_label == "20c/8w"


class TestLatency:
    def test_ladder(self):
        result = latency.run(TINY)
        assert {r.latency for r in result.rows} == set(latency.LATENCIES)
        # The paper's claim: the drop from slow estimation is small
        # relative to the ideal reduction.
        ideal = result.row(1).uop_reduction_pct
        slow = result.row(9).uop_reduction_pct
        assert slow > 0.4 * ideal
        assert "latency" in result.format()


class TestRunner:
    def test_run_all_selected(self, capsys):
        results = run_all(TINY, names=["figure6_7"])
        assert "figure6_7" in results
        out = capsys.readouterr().out
        assert "figure6_7" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_all(TINY, names=["bogus"])

    def test_registry_complete(self):
        from repro.experiments.runner import PAPER_EXPERIMENTS

        assert set(PAPER_EXPERIMENTS) == {
            "table2", "table3", "table4", "table5", "table6",
            "figure4_5", "figure6_7", "figure8", "figure9", "latency",
        }
        # Extensions are selectable through the same registry.
        assert set(PAPER_EXPERIMENTS) <= set(EXPERIMENTS)

"""Tests for the unified telemetry layer.

Covers the metrics registry (instruments, labels, snapshots, worker
merge), span tracing (nesting, the JSONL event stream, schema
validation), exporters (JSON / Prometheus / Markdown), the report CLI,
and the two contracts the package advertises:

- cost: disabled telemetry hands back shared no-op instruments;
- determinism: replay outcomes are bit-identical with telemetry on or
  off (telemetry is observational only).
"""

import json
import logging

import pytest

from repro import telemetry
from repro.engine import Engine, EstimatorSpec, SimJob
from repro.telemetry.registry import _NOOP, MetricsRegistry, MetricsSnapshot
from repro.telemetry.schema import (
    validate_metrics_doc,
    validate_trace_file,
)

JOB = SimJob(
    benchmark="gzip",
    n_branches=2_000,
    warmup=500,
    seed=1,
    estimator=EstimatorSpec.of("perceptron", threshold=0),
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts and ends with telemetry off, empty, sinkless."""
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()


class TestRegistry:
    def test_counter_labels_and_keys(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("hits", tier="memory").inc()
        reg.counter("hits", tier="memory").inc(2)
        reg.counter("hits", tier="disk").inc()
        snap = reg.snapshot()
        assert snap.counter("hits", tier="memory") == 3
        assert snap.counter("hits", tier="disk") == 1
        assert snap.counter("hits") == 0  # unlabeled is a different series
        assert snap.counter_series("hits") == {
            "hits{tier=disk}": 1,
            "hits{tier=memory}": 3,
        }

    def test_label_order_is_canonical(self):
        assert telemetry.instrument_key(
            "m", {"b": 1, "a": 2}
        ) == telemetry.instrument_key("m", {"a": 2, "b": 1})
        name, labels = telemetry.parse_key("m{a=2,b=1}")
        assert name == "m"
        assert labels == {"a": "2", "b": "1"}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("depth").set(3)
        reg.gauge("depth").set(7)
        assert reg.snapshot().gauges["depth"] == 7

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("sizes", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5, 5, 50, 5_000):
            hist.observe(value)
        snap = reg.snapshot().histograms["sizes"]
        assert snap["counts"] == [1, 2, 1, 1]  # last slot = overflow
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5060.5)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(2.0, 1.0))

    def test_disabled_registry_hands_back_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("x") is _NOOP
        assert reg.gauge("x") is _NOOP
        assert reg.histogram("x") is _NOOP
        _NOOP.inc()
        _NOOP.set(1)
        _NOOP.observe(1)
        assert reg.snapshot().empty

    def test_snapshot_since_delta(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("n").inc(5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        before = reg.snapshot()
        reg.counter("n").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(2.0)
        delta = reg.snapshot().since(before)
        assert delta.counters == {"n": 2}
        assert delta.histograms["h"]["counts"] == [0, 1]
        assert delta.histograms["h"]["count"] == 1
        # Unchanged series drop out of the delta entirely.
        assert reg.snapshot().since(reg.snapshot()).empty

    def test_merge_is_additive_and_picklable(self):
        import pickle

        worker = MetricsRegistry(enabled=True)
        worker.counter("n", k="a").inc(3)
        worker.histogram("h", buckets=(1.0, 10.0)).observe(5)
        snap = pickle.loads(pickle.dumps(worker.drain()))
        assert worker.snapshot().empty  # drain resets the worker

        parent = MetricsRegistry(enabled=True)
        parent.counter("n", k="a").inc(1)
        parent.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        parent.merge(snap)
        merged = parent.snapshot()
        assert merged.counter("n", k="a") == 4
        assert merged.histograms["h"]["counts"] == [1, 1, 0]
        assert merged.histograms["h"]["count"] == 2

    def test_merge_respects_prior_enabled_state(self):
        parent = MetricsRegistry(enabled=False)
        parent.merge(MetricsSnapshot(counters={"n": 2}))
        assert parent.snapshot().counter("n") == 2
        assert parent.enabled is False

    def test_module_singleton_identity_is_stable(self):
        reg = telemetry.get_registry()
        telemetry.enable()
        assert telemetry.get_registry() is reg
        assert reg.enabled
        telemetry.disable()
        assert not reg.enabled


class TestSpans:
    def test_fully_disabled_spans_are_shared_noop(self):
        a = telemetry.trace_span("x")
        b = telemetry.trace_span("y", field=1)
        assert a is b  # the shared no-op context

    def test_spans_feed_metrics_without_a_sink(self):
        telemetry.enable()
        with telemetry.trace_span("phase"):
            pass
        snap = telemetry.get_registry().snapshot()
        assert snap.histograms["span_seconds{span=phase}"]["count"] == 1

    def test_trace_file_nesting_and_schema(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.set_trace_path(path)
        assert telemetry.trace_path() == path
        with telemetry.trace_span("outer", run=1):
            with telemetry.trace_span("inner"):
                pass
            telemetry.log_event("note", message="mid-span", detail=7)
        telemetry.close_trace()
        assert telemetry.trace_path() is None

        assert validate_trace_file(path) == []
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert lines[0]["event"] == "meta"
        by_name = {
            obj["name"]: obj for obj in lines[1:]
        }
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["fields"] == {"run": 1}
        assert inner["event"] == "span" and inner["ok"] is True
        # Inner spans complete (and are written) first.
        assert lines.index(inner) < lines.index(outer)
        log = by_name["note"]
        assert log["event"] == "log"
        assert log["parent_id"] == outer["span_id"]
        assert log["fields"] == {"detail": 7}

    def test_span_failure_is_recorded(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.set_trace_path(path)
        with pytest.raises(RuntimeError):
            with telemetry.trace_span("boom"):
                raise RuntimeError("x")
        telemetry.close_trace()
        span = json.loads(open(path, encoding="utf-8").readlines()[1])
        assert span["name"] == "boom" and span["ok"] is False

    def test_log_event_mirrors_to_given_logger(self, caplog):
        logger = logging.getLogger("repro.test.telemetry")
        with caplog.at_level(logging.WARNING, logger="repro.test.telemetry"):
            telemetry.log_event(
                "cache.corrupt_entry",
                message="dropping corrupt entry",
                logger=logger,
                path="/x",
            )
        assert any("corrupt" in r.message for r in caplog.records)


class TestExporters:
    def _snapshot(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("cache_replay_hits_total", tier="memory").inc(4)
        reg.counter("fastpath_fallbacks_total", reason="policy:gating").inc(2)
        reg.gauge("workers").set(2)
        reg.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)
        reg.histogram("latency", buckets=(0.1, 1.0)).observe(0.5)
        return reg.snapshot()

    def test_metrics_doc_is_schema_valid_and_round_trips(self):
        doc = telemetry.metrics_doc(self._snapshot())
        assert validate_metrics_doc(doc) == []
        back = telemetry.snapshot_from_doc(json.loads(json.dumps(doc)))
        assert back.counter("cache_replay_hits_total", tier="memory") == 4
        assert back.histograms["latency"]["count"] == 2

    def test_write_metrics_defaults_to_registry(self, tmp_path):
        telemetry.enable()
        telemetry.get_registry().counter("n").inc()
        path = telemetry.write_metrics(str(tmp_path / "m.json"))
        doc = json.load(open(path, encoding="utf-8"))
        assert validate_metrics_doc(doc) == []
        assert doc["counters"] == {"n": 1}

    def test_prometheus_rendering(self):
        text = telemetry.render_prometheus(
            telemetry.metrics_doc(self._snapshot())
        )
        assert "# TYPE cache_replay_hits_total counter" in text
        assert 'cache_replay_hits_total{tier="memory"} 4' in text
        assert "# TYPE workers gauge" in text
        assert "# TYPE latency histogram" in text
        # le buckets are cumulative; +Inf equals _count.
        assert 'latency{le="0.1"} 1' in text
        assert 'latency{le="1.0"} 2' in text
        assert 'latency{le="+Inf"} 2' in text
        assert "latency_count 2" in text

    def test_markdown_rendering_has_fallback_section(self):
        text = telemetry.render_markdown(
            telemetry.metrics_doc(self._snapshot())
        )
        assert "## Counters" in text
        assert "## Fast-path fallbacks by reason" in text
        assert "policy:gating" in text
        assert "## Histograms" in text

    def test_markdown_rendering_empty_doc(self):
        text = telemetry.render_markdown(
            telemetry.metrics_doc(MetricsSnapshot())
        )
        assert "no metrics collected" in text


class TestSchemaValidation:
    def test_rejects_bad_documents(self):
        assert validate_metrics_doc([]) != []
        assert validate_metrics_doc({"schema": 999}) != []
        doc = telemetry.metrics_doc(MetricsSnapshot(counters={"n": 1}))
        doc["counters"]["n"] = "one"
        assert any("integer" in p for p in validate_metrics_doc(doc))

    def test_rejects_histogram_shape_mismatch(self):
        doc = telemetry.metrics_doc(
            MetricsSnapshot(
                histograms={
                    "h": {
                        "buckets": [1.0, 2.0],
                        "counts": [1, 0],  # needs len(buckets)+1
                        "sum": 1.0,
                        "count": 1,
                    }
                }
            )
        )
        assert any("len(buckets)+1" in p for p in validate_metrics_doc(doc))

    def test_rejects_trace_without_meta_first(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "log", "name": "x"}\n')
        problems = validate_trace_file(str(path))
        assert any("must be 'meta'" in p for p in problems)


class TestCli:
    def _write(self, tmp_path):
        reg = MetricsRegistry(enabled=True)
        reg.counter("n").inc(3)
        path = str(tmp_path / "m.json")
        telemetry.write_metrics(path, reg.snapshot())
        return path

    def test_report_and_validate_roundtrip(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        path = self._write(tmp_path)
        assert main(["validate", path]) == 0
        assert main(["report", path]) == 0
        assert "# Telemetry report" in capsys.readouterr().out
        out = str(tmp_path / "report.md")
        assert main(["report", path, "--format", "prometheus", "--out", out]) == 0
        assert "# TYPE n counter" in open(out, encoding="utf-8").read()

    def test_validate_rejects_and_missing_file(self, tmp_path, capsys):
        from repro.telemetry.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1, "kind": "wrong"}))
        assert main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
        assert main(["validate", str(tmp_path / "nope.json")]) == 2


class TestInstrumentedEngine:
    def test_cache_and_replay_counters(self):
        telemetry.enable()
        engine = Engine()
        engine.run([JOB, JOB.with_(seed=2)])
        engine.run([JOB])  # served from the replay cache
        snap = telemetry.get_registry().snapshot()
        assert snap.counter("engine_jobs_submitted_total") == 3
        assert snap.counter("engine_replays_total", backend="reference") == 2
        assert snap.counter("cache_replay_misses_total") == 2
        assert snap.counter("cache_replay_hits_total", tier="memory") == 1
        assert (
            snap.histograms["engine_replay_seconds{backend=reference}"]["count"]
            == 2
        )

    def test_dedup_counter(self):
        telemetry.enable()
        Engine().run([JOB, JOB])
        snap = telemetry.get_registry().snapshot()
        assert snap.counter("engine_jobs_deduplicated_total") == 1

    def test_worker_snapshots_merge_into_parent(self):
        telemetry.enable()
        engine = Engine(max_workers=2)
        jobs = [JOB.with_(seed=s) for s in (11, 12, 13)]
        engine.run(jobs)
        snap = telemetry.get_registry().snapshot()
        # Replays ran in worker processes; their counters still land here.
        assert snap.counter("engine_replays_total", backend="reference") == 3
        assert snap.counter("engine_jobs_parallel_total") == 3
        # Exact counts: fork-started workers inherit the parent registry
        # and must shed it, or these would be double-merged (>3).
        assert snap.counter("engine_jobs_submitted_total") == 3
        assert snap.counter("cache_replay_misses_total") == 3

    def test_fallback_reason_counter(self):
        fastpath = pytest.importorskip("repro.fastpath")
        from repro.engine import EstimatorSpec as ES

        # 12-bit weights at history 40 overflow the SWAR lanes: buildable
        # by the reference loop, declined by the fast backend.
        job = JOB.with_(
            backend="fast",
            n_branches=500,
            warmup=100,
            estimator=ES.of("perceptron", history_length=40, weight_bits=12),
        )
        if fastpath.available():
            assert fastpath.unsupported_reason(job) == "estimator:perceptron"
        else:
            assert fastpath.unsupported_reason(job) == "no-numpy"
        telemetry.enable()
        Engine().run([job])
        snap = telemetry.get_registry().snapshot()
        series = snap.counter_series("fastpath_fallbacks_total")
        assert sum(series.values()) == 1


class TestDeterminism:
    """Telemetry is observational: outcomes are bit-identical on/off."""

    def test_outcomes_identical_with_telemetry_on_and_off(self, tmp_path):
        jobs = [JOB, JOB.with_(seed=3)]

        off = Engine().run(jobs)
        telemetry.enable()
        telemetry.set_trace_path(str(tmp_path / "trace.jsonl"))
        on = Engine().run(jobs)
        telemetry.close_trace()

        for a, b in zip(off, on):
            assert a.metrics_digest() == b.metrics_digest()
            assert a.canonical_metrics() == b.canonical_metrics()
            assert a.events == b.events

    def test_runner_table_sources_registry(self):
        from repro.experiments.runner import ExperimentRecord

        snap = MetricsSnapshot(
            counters={
                "engine_replays_total{backend=fast}": 5,
                "cache_replay_hits_total{tier=memory}": 2,
                "cache_replay_hits_total{tier=disk}": 1,
                "cache_replay_misses_total": 5,
            }
        )
        row = ExperimentRecord(
            name="t", result=None, seconds=0.0,
            stats=Engine().stats.snapshot(), telemetry=snap,
        ).as_dict()
        assert row["replays executed"] == 5
        assert row["cache hits"] == 3
        assert row["cache misses"] == 5
        assert row["backend"] == "fast"

    def test_runner_table_backend_labels(self):
        from repro.experiments.runner import ExperimentRecord

        def row(counters):
            return ExperimentRecord(
                name="t", result=None, seconds=0.0,
                stats=Engine().stats.snapshot(),
                telemetry=MetricsSnapshot(counters=counters),
            ).as_dict()

        assert row({})["backend"] == "-"
        assert (
            row({"engine_replays_total{backend=reference}": 1})["backend"]
            == "reference"
        )
        mixed = row(
            {
                "engine_replays_total{backend=reference}": 1,
                "engine_replays_total{backend=fast}": 2,
            }
        )
        assert mixed["backend"] == "mixed (1 ref / 2 fast)"

"""Unit tests for repro.common.history."""

import numpy as np
import pytest

from repro.common.history import GlobalHistoryRegister, LocalHistoryTable


class TestGlobalHistoryRegister:
    def test_initial_state(self):
        ghr = GlobalHistoryRegister(8)
        assert ghr.bits == 0
        assert list(ghr.vector) == [-1] * 8

    def test_push_taken_sets_lsb(self):
        ghr = GlobalHistoryRegister(8)
        ghr.push(True)
        assert ghr.bits == 1
        assert ghr.vector[0] == 1

    def test_shift_order(self):
        ghr = GlobalHistoryRegister(4)
        ghr.push(True)
        ghr.push(False)
        # Most recent (not-taken) at bit 0, older taken at bit 1.
        assert ghr.bits == 0b10
        assert list(ghr.vector) == [-1, 1, -1, -1]

    def test_length_bound(self):
        ghr = GlobalHistoryRegister(3)
        for _ in range(10):
            ghr.push(True)
        assert ghr.bits == 0b111

    def test_vector_matches_bits_always(self):
        ghr = GlobalHistoryRegister(12)
        rng = np.random.default_rng(0)
        for _ in range(200):
            ghr.push(bool(rng.integers(2)))
            expected = [1 if (ghr.bits >> i) & 1 else -1 for i in range(12)]
            assert list(ghr.vector) == expected

    def test_set_bits_and_clear(self):
        ghr = GlobalHistoryRegister(8)
        ghr.set_bits(0b1010_1010)
        assert ghr.vector[1] == 1
        assert ghr.vector[0] == -1
        ghr.clear()
        assert ghr.bits == 0

    def test_snapshot_vector_is_copy(self):
        ghr = GlobalHistoryRegister(4)
        snap = ghr.snapshot_vector()
        ghr.push(True)
        assert snap[0] == -1

    def test_folded(self):
        ghr = GlobalHistoryRegister(16)
        ghr.set_bits(0xABCD)
        assert ghr.folded(8) == (0xAB ^ 0xCD)

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalHistoryRegister(0)
        with pytest.raises(ValueError):
            GlobalHistoryRegister(65)


class TestLocalHistoryTable:
    def test_per_branch_isolation(self):
        lht = LocalHistoryTable(entries=16, history_length=4)
        lht.push(0x400000, True)
        assert lht.read(0x400000) == 1
        assert lht.read(0x400004) == 0

    def test_pattern_accumulates(self):
        lht = LocalHistoryTable(entries=16, history_length=4)
        pc = 0x400000
        for taken in (True, True, False):
            lht.push(pc, taken)
        assert lht.read(pc) == 0b110

    def test_length_bound(self):
        lht = LocalHistoryTable(entries=4, history_length=3)
        pc = 0x40
        for _ in range(10):
            lht.push(pc, True)
        assert lht.read(pc) == 0b111

    def test_aliasing_by_entry_count(self):
        lht = LocalHistoryTable(entries=4, history_length=4)
        # pc >> 2 congruent mod 4 -> same slot.
        lht.push(0x10, True)
        assert lht.read(0x10 + 16) == 1

    def test_clear(self):
        lht = LocalHistoryTable(entries=4, history_length=4)
        lht.push(0, True)
        lht.clear()
        assert lht.read(0) == 0

    def test_storage_bits(self):
        lht = LocalHistoryTable(entries=2048, history_length=10)
        assert lht.storage_bits == 20480

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(entries=0, history_length=4)
        with pytest.raises(ValueError):
            LocalHistoryTable(entries=4, history_length=0)
        with pytest.raises(ValueError):
            LocalHistoryTable(entries=4, history_length=33)

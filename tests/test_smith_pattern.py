"""Unit tests for the Smith and Tyson pattern confidence estimators."""

import pytest

from repro.core.pattern import PatternEstimator, default_high_confidence_patterns
from repro.core.smith import SmithEstimator
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.static import AlwaysTakenPredictor


class TestSmithEstimator:
    def test_requires_counter_predictor(self):
        with pytest.raises(TypeError):
            SmithEstimator(AlwaysTakenPredictor())

    def test_weak_counter_is_low_confidence(self):
        predictor = BimodalPredictor(entries=64)
        est = SmithEstimator(predictor, strength_threshold=0.9)
        # Fresh counters sit at the weak midpoint.
        assert est.estimate(0x40, True).low_confidence

    def test_saturated_counter_is_high_confidence(self):
        predictor = BimodalPredictor(entries=64)
        est = SmithEstimator(predictor, strength_threshold=0.9)
        pc = 0x40
        for _ in range(4):
            predictor.update(pc, True, predictor.predict(pc))
        assert not est.estimate(pc, True).low_confidence

    def test_zero_storage(self):
        est = SmithEstimator(BimodalPredictor(entries=64))
        assert est.storage_bits == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SmithEstimator(BimodalPredictor(entries=64), strength_threshold=0.0)

    def test_train_is_noop(self):
        predictor = BimodalPredictor(entries=64)
        est = SmithEstimator(predictor)
        sig = est.estimate(0x40, True)
        est.train(0x40, True, False, sig)  # must not raise or mutate
        assert est.estimate(0x40, True).raw == sig.raw


class TestDefaultPatterns:
    def test_includes_extremes(self):
        patterns = default_high_confidence_patterns(4, max_flips=0)
        assert patterns == frozenset({0b0000, 0b1111})

    def test_one_flip(self):
        patterns = default_high_confidence_patterns(3, max_flips=1)
        # 0 or 1 ones, and 2 or 3 ones.
        assert patterns == frozenset({0b000, 0b001, 0b010, 0b100,
                                      0b011, 0b101, 0b110, 0b111})

    def test_validation(self):
        with pytest.raises(ValueError):
            default_high_confidence_patterns(0)
        with pytest.raises(ValueError):
            default_high_confidence_patterns(4, max_flips=-1)


class TestPatternEstimator:
    def test_steady_pattern_is_high_confidence(self):
        local = LocalPredictor(history_entries=64, history_length=4)
        est = PatternEstimator(local)
        pc = 0x40
        for _ in range(8):
            local.update(pc, True, local.predict(pc))
        assert not est.estimate(pc, True).low_confidence

    def test_mixed_pattern_is_low_confidence(self):
        local = LocalPredictor(history_entries=64, history_length=4)
        est = PatternEstimator(local)
        pc = 0x40
        for taken in (True, False, True, False):
            local.update(pc, taken, local.predict(pc))
        assert est.estimate(pc, True).low_confidence

    def test_explicit_pattern_set(self):
        local = LocalPredictor(history_entries=64, history_length=4)
        est = PatternEstimator(local, high_patterns={0b1010})
        pc = 0x40
        for taken in (True, False, True, False):
            local.update(pc, taken, local.predict(pc))
        # Shifts: T->1, F->10, T->101, F->1010 (a trusted pattern).
        assert not est.estimate(pc, True).low_confidence
        local.update(pc, True, local.predict(pc))
        # Now 0101, which is not in the trusted set.
        assert est.estimate(pc, True).low_confidence

    def test_pattern_out_of_range_rejected(self):
        local = LocalPredictor(history_entries=64, history_length=4)
        with pytest.raises(ValueError):
            PatternEstimator(local, high_patterns={0b10000})

    def test_zero_own_storage(self):
        local = LocalPredictor(history_entries=64, history_length=4)
        assert PatternEstimator(local).storage_bits == 0

"""End-to-end tests for the sweep layer (spec -> DAG -> store).

The contract under test is the ISSUE's acceptance set: a sweep
populates the store, re-running executes nothing, a crashed sweep
resumes with only the missing jobs (proved via telemetry counters),
and the report re-rendered purely from the store is bit-identical to
one rendered from fresh results.
"""

import json

import pytest

from repro import telemetry
from repro.engine import configure_engine
from repro.experiments import runner
from repro.experiments.common import ExperimentSettings
from repro.experiments.runner import (
    EXPERIMENT_JOBS,
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    SUITES,
    resolve_suite,
)
from repro.results import ResultStore
from repro.sweeps import (
    SweepDag,
    SweepInstance,
    SweepSpec,
    SweepSpecError,
    builtin_spec_names,
    load_spec,
    record_key,
    render_from_store,
    report_markdown,
    resolve_instance,
    run_sweep,
)
from repro.sweeps.cli import main as sweeps_main

BASE = ExperimentSettings(n_branches=4_000, warmup=1_200, benchmarks=("gzip",))

SPEC = SweepSpec(
    name="tiny",
    description="test sweep",
    experiments=("table2", "figure4_5"),
    instances=(SweepInstance(name="default"),),
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.close_trace()
    telemetry.disable()
    telemetry.reset()


@pytest.fixture()
def fresh_engine(tmp_path):
    """A cold default engine with a disk replay cache, restored after."""
    engine = configure_engine(reset=True, cache_dir=str(tmp_path / "cache"))
    yield engine
    configure_engine(reset=True)


class TestSpec:
    def test_builtin_specs_load_and_validate(self):
        names = builtin_spec_names()
        assert {"paper", "extensions", "quick"} <= set(names)
        for name in names:
            spec = load_spec(name)
            assert spec.experiments
            for experiment in spec.experiments:
                assert experiment in EXPERIMENT_JOBS

    def test_paper_spec_matches_full_suite(self):
        assert load_spec("paper").experiments == SUITES["full"]

    def test_extension_specs_cover_retired_suites(self):
        covered = set(load_spec("extensions").experiments)
        retired = set(
            SUITES["ext"] + SUITES["ext2"] + SUITES["ext3"] + SUITES["ext4"]
        )
        assert retired <= covered

    def test_load_rejects_bad_specs(self, tmp_path):
        def _load(doc):
            path = tmp_path / "s.json"
            path.write_text(json.dumps(doc))
            return load_spec(str(path))

        with pytest.raises(SweepSpecError, match="schema"):
            _load({"schema": 99, "name": "x", "experiments": ["table2"]})
        with pytest.raises(SweepSpecError, match="unknown experiments"):
            _load({"schema": 1, "name": "x", "experiments": ["nonesuch"]})
        with pytest.raises(SweepSpecError, match="unknown settings"):
            _load({
                "schema": 1, "name": "x", "experiments": ["table2"],
                "instances": [{"name": "i", "settings": {"bogus": 1}}],
            })
        with pytest.raises(SweepSpecError, match="not a builtin"):
            load_spec("nonesuch-spec")

    def test_resolve_instance_applies_scale_then_overrides(self):
        instance = SweepInstance(
            name="i",
            settings=(("benchmarks", ("gzip",)), ("scale", 0.5), ("seed", 9)),
        )
        settings = resolve_instance(BASE, instance)
        assert settings.n_branches == 2_000
        assert settings.seed == 9
        assert settings.benchmarks == ("gzip",)

    def test_record_key_tracks_settings(self):
        a = record_key("table2", BASE)
        assert a == record_key("table2", BASE)
        assert a != record_key("table3", BASE)
        assert a != record_key("table2", BASE.scaled(0.5))


class TestDag:
    def test_shared_jobs_deduplicate(self):
        spec = SweepSpec(
            name="shared",
            description="",
            experiments=("figure8", "figure9"),  # figure9 reuses figure8's jobs
            instances=(SweepInstance(name="default"),),
        )
        dag = SweepDag.from_spec(spec, BASE)
        assert dag.submitted_jobs == 2 * len(dag.jobs)
        assert len(dag.experiments) == 2

    def test_topological_order_puts_jobs_before_experiments(self):
        dag = SweepDag.from_spec(SPEC, BASE)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for src, dst in dag.edges():
            assert position[src] < position[dst]
        assert len(order) == len(dag.jobs) + len(dag.experiments)


class TestRunSweep:
    def test_populates_store_and_resumes_with_zero_work(self, fresh_engine):
        with ResultStore(":memory:") as store:
            outcome = run_sweep(SPEC, store, BASE)
            assert outcome.executed_jobs == outcome.planned_jobs > 0
            assert outcome.experiments_run == 2
            assert store.job_count() == outcome.planned_jobs
            again = run_sweep(SPEC, store, BASE)
            assert again.executed_jobs == 0
            assert again.experiments_run == 0
            assert again.experiments_cached == 2

    def test_render_from_store_is_bit_identical_to_fresh(self, fresh_engine):
        with ResultStore(":memory:") as store:
            run_sweep(SPEC, store, BASE)
            stored_md = render_from_store(SPEC, store, BASE)
        fresh_results = {
            section: EXPERIMENTS[experiment](resolve_instance(BASE, instance))
            for experiment, instance, section in SPEC.section_names
        }
        fresh_md = report_markdown(SPEC, BASE, fresh_results)
        assert stored_md == fresh_md

    def test_render_from_store_names_missing_sections(self, fresh_engine):
        with ResultStore(":memory:") as store:
            with pytest.raises(KeyError, match="table2"):
                render_from_store(SPEC, store, BASE)

    def test_crash_resume_executes_only_missing_jobs(
        self, tmp_path, fresh_engine
    ):
        path = str(tmp_path / "r.sqlite")
        jobs = SweepDag.from_spec(SPEC, BASE).job_list()
        assert len(jobs) >= 2
        # The sweep dies after its first job: store and disk cache hold
        # exactly that completed prefix (both are written per-outcome).
        with ResultStore(path) as store:
            fresh_engine.result_sink = lambda job, outcome: store.put_job(
                job, outcome.canonical_metrics()
            )
            try:
                fresh_engine.run(jobs[:1])
            finally:
                fresh_engine.result_sink = None
            assert store.job_count() == 1

        # Fresh process: memory caches gone, disk cache + store survive.
        configure_engine(reset=True, cache_dir=str(tmp_path / "cache"))
        telemetry.enable()
        before = telemetry.get_registry().snapshot()
        with ResultStore(path) as store:
            outcome = run_sweep(SPEC, store, BASE)
            assert store.job_count() == len(jobs)
        delta = telemetry.get_registry().snapshot().since(before)
        executed = delta.counter(
            "engine_replays_total", backend="reference"
        ) + delta.counter("engine_replays_total", backend="fast")
        # Only the jobs lost to the crash replayed; the stored one was
        # served by the disk cache during the experiment phase.
        assert executed == len(jobs) - 1
        assert outcome.executed_jobs == len(jobs) - 1

    def test_sink_crash_mid_batch_preserves_completed_work(
        self, tmp_path, fresh_engine
    ):
        path = str(tmp_path / "r.sqlite")

        class CrashingStore(ResultStore):
            """Dies while persisting the second outcome."""

            puts = 0

            def put_job(self, job, metrics):
                if self.puts >= 1:
                    raise KeyboardInterrupt("simulated crash")
                CrashingStore.puts += 1
                return super().put_job(job, metrics)

        with CrashingStore(path) as store:
            with pytest.raises(KeyboardInterrupt):
                run_sweep(SPEC, store, BASE)
            # The first outcome landed before the crash: persistence is
            # incremental, not batch-end.
            assert store.job_count() == 1

        configure_engine(reset=True, cache_dir=str(tmp_path / "cache"))
        with ResultStore(path) as store:
            outcome = run_sweep(SPEC, store, BASE)
            total = len(SweepDag.from_spec(SPEC, BASE).jobs)
            assert store.job_count() == total
            # The in-flight outcome reached the disk cache before its
            # sink call crashed, so resume re-executes nothing.
            assert outcome.executed_jobs == 0

    def test_corrupt_row_heals_by_reexecution(self, fresh_engine):
        with ResultStore(":memory:") as store:
            first = run_sweep(SPEC, store, BASE)
            victim = store.query_jobs()[0].fingerprint
            store.corrupt_job(victim)
            # Fully cold engine (no disk cache): the corrupt row's job
            # must genuinely re-execute, not replay from a cache.
            configure_engine(reset=True)
            healed = run_sweep(SPEC, store, BASE)
            assert healed.executed_jobs == 1
            assert store.get_job(victim) is not None
            assert first.planned_jobs == store.job_count()


def _write_tiny_spec(tmp_path) -> str:
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "schema": 1,
        "name": "tiny",
        "description": "cli test sweep",
        "experiments": ["table2"],
        "instances": [{
            "name": "default",
            "settings": {
                "n_branches": 4000, "warmup": 1200, "benchmarks": ["gzip"],
            },
        }],
    }))
    return str(path)


class TestCli:
    def test_run_render_status_query(self, tmp_path, fresh_engine, capsys):
        spec = _write_tiny_spec(tmp_path)
        store = str(tmp_path / "r.sqlite")
        cache = str(tmp_path / "cli-cache")
        run_md = str(tmp_path / "run.md")
        assert sweeps_main([
            "run", spec, "--store", store, "--cache-dir", cache,
            "--markdown", run_md,
        ]) == 0
        out = capsys.readouterr().out
        assert "1 experiment(s) rendered" in out

        render_md = str(tmp_path / "render.md")
        assert sweeps_main([
            "render", spec, "--store", store, "--markdown", render_md,
        ]) == 0
        with open(run_md, "rb") as a, open(render_md, "rb") as b:
            assert a.read() == b.read()

        assert sweeps_main(["status", "--store", store]) == 0
        assert "1 experiment record(s)" in capsys.readouterr().out

        assert sweeps_main([
            "query", "--store", store, "--benchmark", "gzip", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["benchmark"] == "gzip"

    def test_render_fails_cleanly_on_empty_store(self, tmp_path, capsys):
        spec = _write_tiny_spec(tmp_path)
        status = sweeps_main([
            "render", spec, "--store", str(tmp_path / "empty.sqlite"),
        ])
        assert status == 1
        assert "missing" in capsys.readouterr().err

    def test_unknown_spec_is_a_usage_error(self, tmp_path, capsys):
        assert sweeps_main([
            "run", "nonesuch-spec", "--store", str(tmp_path / "r.sqlite"),
        ]) == 2

    def test_bench_gate_fires_under_injected_slowdown(
        self, tmp_path, fresh_engine, capsys
    ):
        spec = _write_tiny_spec(tmp_path)
        store = str(tmp_path / "r.sqlite")
        trajectory = str(tmp_path / "BENCH_tiny.json")
        assert sweeps_main([
            "bench", spec, "--store", store, "--trajectory", trajectory,
        ]) == 0
        assert sweeps_main([
            "bench", spec, "--store", store, "--trajectory", trajectory,
            "--inject-slowdown", "10",
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        doc = json.loads((tmp_path / "BENCH_tiny.json").read_text())
        assert len(doc["points"]) == 2


class TestRunnerSuiteShim:
    def test_suites_resolve_to_known_experiments(self):
        for name in SUITES:
            for experiment in resolve_suite(name):
                assert experiment in EXPERIMENTS
        assert resolve_suite("full") == list(PAPER_EXPERIMENTS)
        with pytest.raises(KeyError, match="known suites"):
            resolve_suite("nonesuch")

    def test_suite_flag_expands_like_the_retired_txt_lists(self, monkeypatch):
        captured = {}

        def fake_run_all(settings, names=None, extensions=False):
            captured["names"] = names
            return runner.RunReport()

        monkeypatch.setattr(runner, "run_all", fake_run_all)
        assert runner.main(["--suite", "fig89"]) == 0
        assert captured["names"] == ["figure8", "figure9", "figure6_7"]

        assert runner.main(["--suite", "ext3", "--suite", "ext4"]) == 0
        assert captured["names"] == ["ablation_indexing", "throttle"]

        # Explicit ids append after the suite, without repeats.
        assert runner.main(["--suite", "fig89", "figure8", "table2"]) == 0
        assert captured["names"] == [
            "figure8", "figure9", "figure6_7", "table2",
        ]

"""Unit tests for state serialisation."""

import numpy as np
import pytest

from repro.common.counters import CounterTable
from repro.common.perceptron import PerceptronArray
from repro.common.state import StateError, load_state, save_state
from repro.core.jrs import JRSEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator


class TestSaveLoadState:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "s.npz")
        save_state(path, "thing", {"a": np.arange(5), "b": 7})
        state = load_state(path, "thing")
        assert list(state["a"]) == [0, 1, 2, 3, 4]
        assert int(state["b"]) == 7

    def test_kind_mismatch(self, tmp_path):
        path = str(tmp_path / "s.npz")
        save_state(path, "thing", {"a": 1})
        with pytest.raises(StateError, match="expected"):
            load_state(path, "other")

    def test_not_a_state_file(self, tmp_path):
        path = str(tmp_path / "raw.npz")
        np.savez(path, x=np.arange(3))
        with pytest.raises(StateError, match="not a repro state file"):
            load_state(path, "thing")

    def test_reserved_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state(str(tmp_path / "s.npz"), "thing", {"__kind__": 1})


class TestStructureStateDicts:
    def test_counter_table_roundtrip(self):
        src = CounterTable(entries=8, bits=3)
        for i in range(8):
            src.write(i, i % 8)
        dst = CounterTable(entries=8, bits=3)
        dst.load_state_dict(src.state_dict())
        assert (dst.snapshot() == src.snapshot()).all()

    def test_counter_table_geometry_checked(self):
        src = CounterTable(entries=8, bits=3)
        dst = CounterTable(entries=16, bits=3)
        with pytest.raises(ValueError):
            dst.load_state_dict(src.state_dict())

    def test_counter_table_range_checked(self):
        dst = CounterTable(entries=4, bits=2)
        with pytest.raises(ValueError):
            dst.load_state_dict({"table": np.array([0, 1, 2, 9])})

    def test_perceptron_array_roundtrip(self):
        src = PerceptronArray(entries=4, history_length=8)
        x = np.array([1, -1] * 4, dtype=np.int8)
        for _ in range(5):
            src.train(0, x, 1)
        dst = PerceptronArray(entries=4, history_length=8)
        dst.load_state_dict(src.state_dict())
        assert dst.output(0, x) == src.output(0, x)

    def test_perceptron_array_geometry_checked(self):
        src = PerceptronArray(entries=4, history_length=8)
        dst = PerceptronArray(entries=4, history_length=16)
        with pytest.raises(ValueError):
            dst.load_state_dict(src.state_dict())


class TestEstimatorPersistence:
    def warm_perceptron(self, simple_trace):
        from repro.core.frontend import FrontEnd
        from repro.predictors.hybrid import make_baseline_hybrid

        est = PerceptronConfidenceEstimator(threshold=0)
        FrontEnd(make_baseline_hybrid(), est).replay(simple_trace.slice(0, 2000))
        return est

    def test_perceptron_estimator_roundtrip(self, tmp_path, simple_trace):
        src = self.warm_perceptron(simple_trace)
        path = str(tmp_path / "ce.npz")
        src.save(path)
        dst = PerceptronConfidenceEstimator(threshold=0)
        dst.load(path)
        assert (dst.array.snapshot() == src.array.snapshot()).all()
        assert dst.history.bits == src.history.bits
        pc = simple_trace[0].pc
        assert dst.output(pc) == src.output(pc)

    def test_perceptron_geometry_mismatch(self, tmp_path, simple_trace):
        src = self.warm_perceptron(simple_trace)
        path = str(tmp_path / "ce.npz")
        src.save(path)
        other = PerceptronConfidenceEstimator(threshold=0, history_length=16)
        with pytest.raises(StateError):
            other.load(path)

    def test_jrs_roundtrip(self, tmp_path):
        src = JRSEstimator(threshold=7)
        pc = 0x40
        for _ in range(9):
            src.train(pc, True, True, src.estimate(pc, True))
            src.shift_history(True)
        path = str(tmp_path / "jrs.npz")
        src.save(path)
        dst = JRSEstimator(threshold=7)
        dst.load(path)
        assert dst.history.bits == src.history.bits
        assert dst.estimate(pc, True).raw == src.estimate(pc, True).raw

    def test_jrs_kind_protected(self, tmp_path, simple_trace):
        perc = self.warm_perceptron(simple_trace)
        path = str(tmp_path / "ce.npz")
        perc.save(path)
        with pytest.raises(StateError):
            JRSEstimator(threshold=7).load(path)

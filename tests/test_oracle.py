"""Unit tests for the oracle confidence bound."""

import pytest

from repro.core.estimator import AlwaysHighEstimator
from repro.core.frontend import FrontEnd
from repro.core.oracle import oracle_events
from repro.core.reversal import GatingOnlyPolicy, ThreeRegionPolicy
from repro.core.types import ConfidenceLevel
from repro.predictors.hybrid import make_baseline_hybrid


@pytest.fixture()
def events(simple_trace):
    frontend = FrontEnd(make_baseline_hybrid(), AlwaysHighEstimator())
    return [frontend.process(r) for r in simple_trace]


class TestPerfectOracle:
    def test_flags_exactly_the_mispredictions(self, events):
        oracled = oracle_events(events, GatingOnlyPolicy())
        for orig, new in zip(events, oracled):
            assert new.signal.low_confidence == (not orig.predictor_correct)

    def test_strong_flags_enable_perfect_reversal(self, events):
        oracled = oracle_events(events, ThreeRegionPolicy())
        for ev in oracled:
            if not ev.predictor_correct:
                assert ev.signal.level is ConfidenceLevel.STRONG_LOW
                assert ev.final_correct  # reversal fixed it
            else:
                assert ev.final_correct

    def test_originals_untouched(self, events):
        before = [(e.signal.low_confidence, e.final_prediction) for e in events]
        oracle_events(events, GatingOnlyPolicy())
        after = [(e.signal.low_confidence, e.final_prediction) for e in events]
        assert before == after


class TestDegradedOracle:
    def test_coverage_reduces_flags(self, events):
        full = oracle_events(events, GatingOnlyPolicy(), coverage=1.0)
        half = oracle_events(events, GatingOnlyPolicy(), coverage=0.5, seed=3)
        n_full = sum(e.signal.low_confidence for e in full)
        n_half = sum(e.signal.low_confidence for e in half)
        assert 0 < n_half < n_full

    def test_accuracy_injects_false_flags(self, events):
        degraded = oracle_events(
            events, GatingOnlyPolicy(), coverage=1.0, accuracy=0.5, seed=3
        )
        false_flags = sum(
            1
            for e in degraded
            if e.signal.low_confidence and e.predictor_correct
        )
        true_flags = sum(
            1
            for e in degraded
            if e.signal.low_confidence and not e.predictor_correct
        )
        assert false_flags > 0
        # PVN should be near the requested 0.5.
        pvn = true_flags / (true_flags + false_flags)
        assert 0.3 < pvn < 0.7

    def test_deterministic_given_seed(self, events):
        a = oracle_events(events, GatingOnlyPolicy(), coverage=0.5, seed=9)
        b = oracle_events(events, GatingOnlyPolicy(), coverage=0.5, seed=9)
        assert [e.signal.low_confidence for e in a] == [
            e.signal.low_confidence for e in b
        ]

    def test_validation(self, events):
        with pytest.raises(ValueError):
            oracle_events(events, GatingOnlyPolicy(), coverage=1.5)
        with pytest.raises(ValueError):
            oracle_events(events, GatingOnlyPolicy(), accuracy=0.0)

"""Unit tests for result export and terminal plotting."""

import csv
import json

import numpy as np
import pytest

from repro.analysis.density import OutputDensity
from repro.analysis.export import rows_from_result, write_csv, write_json
from repro.analysis.textplot import density_plot, frontier_plot


class FakeRow:
    def __init__(self, **kw):
        self._kw = kw

    def as_dict(self):
        return dict(self._kw)


class FakeResult:
    def __init__(self, rows):
        self.rows = rows


class TestRowsFromResult:
    def test_rows_attribute_with_as_dict(self):
        result = FakeResult([FakeRow(a=1), FakeRow(a=2)])
        assert rows_from_result(result) == [{"a": 1}, {"a": 2}]

    def test_cells_attribute(self):
        class CellResult:
            cells = [FakeRow(x=1)]

        assert rows_from_result(CellResult()) == [{"x": 1}]

    def test_plain_sequence(self):
        assert rows_from_result([{"k": 1}]) == [{"k": 1}]

    def test_mapping_rows(self):
        assert rows_from_result(FakeResult([{"m": 3}])) == [{"m": 3}]

    def test_bad_input(self):
        with pytest.raises(TypeError):
            rows_from_result(42)
        with pytest.raises(TypeError):
            rows_from_result(FakeResult([object()]))

    def test_real_experiment_result(self):
        from repro.experiments import table2
        from repro.experiments.common import ExperimentSettings

        result = table2.run(
            ExperimentSettings(n_branches=4000, warmup=1200,
                               benchmarks=("gzip",))
        )
        rows = rows_from_result(result)
        assert rows[0]["benchmark"] == "gzip"


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.csv")
        n = write_csv(FakeResult([FakeRow(a=1, b="x"), FakeRow(a=2, b="y")]), path)
        assert n == 2
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0] == {"a": "1", "b": "x"}

    def test_column_selection(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(FakeResult([FakeRow(a=1, b=2)]), path, columns=["b"])
        with open(path) as fh:
            assert fh.readline().strip() == "b"

    def test_empty(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        assert write_csv(FakeResult([]), path) == 0


class TestWriteJson:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.json")
        n = write_json(FakeResult([FakeRow(a=1)]), path, label="t")
        assert n == 1
        payload = json.load(open(path))
        assert payload["label"] == "t"
        assert payload["rows"] == [{"a": 1}]


class TestDensityPlot:
    def density(self):
        rng = np.random.default_rng(0)
        return OutputDensity(rng.normal(-100, 20, 500), rng.normal(50, 20, 80))

    def test_renders_rows(self):
        text = density_plot(self.density(), bins=10)
        lines = text.splitlines()
        assert len(lines) == 11
        assert "#" in text and "*" in text

    def test_zoom(self):
        text = density_plot(self.density(), bins=5, value_range=(0, 100))
        # All bin centres inside the zoom window.
        for line in text.splitlines()[1:]:
            centre = float(line.split()[0])
            assert 0 <= centre <= 100

    def test_width_validation(self):
        with pytest.raises(ValueError):
            density_plot(self.density(), width=2)


class TestFrontierPlot:
    def test_renders_points(self):
        text = frontier_plot([(1.0, 5.0, "jrs"), (0.5, 8.0, "perc")])
        assert "legend" in text
        assert "j=jrs" in text and "p=perc" in text
        assert "j" in text.splitlines()[3] or any(
            "j" in line for line in text.splitlines()[1:-3]
        )

    def test_empty(self):
        assert frontier_plot([]) == "(no points)"

    def test_size_validation(self):
        with pytest.raises(ValueError):
            frontier_plot([(1, 1, "x")], width=2)

"""Unit tests for the front-end coupling (repro.core.frontend)."""

import pytest

from repro.core.estimator import AlwaysHighEstimator
from repro.core.frontend import FrontEnd, FrontEndResult, apply_policy
from repro.core.jrs import JRSEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.reversal import (
    BranchAction,
    GatingOnlyPolicy,
    NoSpeculationControl,
    ThreeRegionPolicy,
)
from repro.predictors.hybrid import make_baseline_hybrid
from repro.predictors.static import AlwaysTakenPredictor
from repro.trace.record import BranchRecord, Trace


def two_branch_trace(n=200):
    records = []
    for i in range(n):
        records.append(BranchRecord(pc=0x40, taken=True, uops_before=7))
        records.append(BranchRecord(pc=0x44, taken=False, uops_before=7))
    return Trace(records, name="two")


class TestProcess:
    def test_event_fields(self):
        fe = FrontEnd(AlwaysTakenPredictor(), AlwaysHighEstimator())
        ev = fe.process(BranchRecord(pc=0x40, taken=False, uops_before=3))
        assert ev.pc == 0x40
        assert ev.prediction is True
        assert ev.final_prediction is True
        assert not ev.predictor_correct
        assert not ev.final_correct
        assert ev.uops_before == 3
        assert ev.decision.action is BranchAction.NORMAL

    def test_predictor_trains_through_frontend(self):
        fe = FrontEnd(make_baseline_hybrid(), AlwaysHighEstimator())
        result = fe.replay(two_branch_trace(), warmup=40)
        assert result.misprediction_rate < 0.05

    def test_estimator_history_shifts(self):
        est = PerceptronConfidenceEstimator()
        fe = FrontEnd(AlwaysTakenPredictor(), est)
        fe.process(BranchRecord(pc=0x40, taken=True))
        assert est.history.bits == 1


class TestRun:
    def test_warmup_excluded_from_metrics(self):
        fe = FrontEnd(make_baseline_hybrid(), JRSEstimator())
        trace = two_branch_trace(50)
        full = fe.replay(trace)
        assert full.branches == len(trace)
        fe2 = FrontEnd(make_baseline_hybrid(), JRSEstimator())
        warm = fe2.replay(trace, warmup=60)
        assert warm.branches == len(trace) - 60

    def test_negative_warmup_rejected(self):
        fe = FrontEnd(AlwaysTakenPredictor(), AlwaysHighEstimator())
        with pytest.raises(ValueError):
            fe.replay(two_branch_trace(), warmup=-1)

    def test_always_high_estimator_never_flags(self, simple_trace):
        fe = FrontEnd(make_baseline_hybrid(), AlwaysHighEstimator())
        result = fe.replay(simple_trace)
        assert result.metrics.overall.flagged_low == 0
        assert result.metrics.overall.spec == 0.0

    def test_continue_aggregation(self):
        fe = FrontEnd(AlwaysTakenPredictor(), AlwaysHighEstimator())
        first = fe.replay(two_branch_trace(10))
        combined = fe.replay(two_branch_trace(10), result=first)
        assert combined.branches == 40

    def test_collect_outputs(self, simple_trace):
        fe = FrontEnd(
            make_baseline_hybrid(),
            PerceptronConfidenceEstimator(),
            collect_outputs=True,
        )
        result = fe.replay(simple_trace, warmup=500)
        total = len(result.outputs_correct) + len(result.outputs_mispredicted)
        assert total == result.branches


class TestReversalAccounting:
    def test_correcting_and_breaking_counts(self):
        # Estimator that always reports strong-low forces reversal of
        # every branch: reversals fix mispredictions and break correct
        # predictions symmetrically.
        class AlwaysStrongLow(AlwaysHighEstimator):
            def estimate(self, pc, prediction):
                from repro.core.types import ConfidenceSignal

                return ConfidenceSignal.strong_low(100.0)

        fe = FrontEnd(
            AlwaysTakenPredictor(), AlwaysStrongLow(), ThreeRegionPolicy()
        )
        result = fe.replay(two_branch_trace(50))
        assert result.reversals == 100
        # taken branches were predicted correctly -> broken by reversal;
        # not-taken branches were mispredicted -> fixed.
        assert result.reversals_correcting == 50
        assert result.reversals_breaking == 50
        assert result.net_reversal_gain == 0
        assert result.final_misprediction_rate == pytest.approx(0.5)


class TestApplyPolicy:
    def test_reclassifies_decisions(self, simple_trace):
        fe = FrontEnd(make_baseline_hybrid(), JRSEstimator(threshold=7))
        events = [fe.process(r) for r in simple_trace]
        gated = apply_policy(events, GatingOnlyPolicy())
        assert len(gated) == len(events)
        n_gate = sum(1 for e in gated if e.decision.action is BranchAction.GATE)
        n_low = sum(1 for e in events if e.signal.low_confidence)
        assert n_gate == n_low

    def test_baseline_strip(self, simple_trace):
        fe = FrontEnd(
            make_baseline_hybrid(), JRSEstimator(threshold=7), GatingOnlyPolicy()
        )
        events = [fe.process(r) for r in simple_trace]
        stripped = apply_policy(events, NoSpeculationControl())
        assert all(e.decision.action is BranchAction.NORMAL for e in stripped)
        # Predictions and signals are untouched.
        for orig, new in zip(events, stripped):
            assert orig.prediction == new.prediction
            assert orig.signal is new.signal

"""Unit tests for the fusion estimators (extension)."""

import pytest

from repro.core.combined_estimator import AgreementEstimator, CascadeEstimator
from repro.core.frontend import FrontEnd
from repro.core.jrs import JRSEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.predictors.hybrid import make_baseline_hybrid


def make_pair():
    return (
        PerceptronConfidenceEstimator(threshold=0),
        JRSEstimator(threshold=7),
    )


class TestAgreementEstimator:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            AgreementEstimator(*make_pair(), mode="xor")

    def test_intersection_flags_subset_of_union(self, simple_trace):
        results = {}
        for mode in ("intersection", "union"):
            frontend = FrontEnd(
                make_baseline_hybrid(),
                AgreementEstimator(*make_pair(), mode=mode),
            )
            results[mode] = frontend.replay(simple_trace, warmup=1000)
        inter = results["intersection"].metrics.overall
        union = results["union"].metrics.overall
        assert inter.flagged_low <= union.flagged_low
        assert union.spec >= inter.spec

    def test_cold_estimators_agree_high(self):
        est = AgreementEstimator(*make_pair(), mode="union")
        # Cold: perceptron high (y=0 <= 0), JRS low (counter 0 < 7).
        sig = est.estimate(0x40, True)
        assert sig.low_confidence  # union picks up the JRS flag
        est2 = AgreementEstimator(*make_pair(), mode="intersection")
        assert not est2.estimate(0x40, True).low_confidence

    def test_components_train_independently(self, simple_trace):
        est = AgreementEstimator(*make_pair(), mode="intersection")
        frontend = FrontEnd(make_baseline_hybrid(), est)
        frontend.replay(simple_trace.slice(0, 1500))
        # The JRS component must have accumulated miss-distance state.
        assert est.secondary.estimate(simple_trace[0].pc, True).raw >= 0
        # The perceptron component must have non-zero weights somewhere.
        assert est.primary.array.snapshot().any()

    def test_storage_sums_components(self):
        est = AgreementEstimator(*make_pair())
        assert est.storage_bits == (
            est.primary.storage_bits + est.secondary.storage_bits
        )

    def test_history_shifts_both(self):
        est = AgreementEstimator(*make_pair())
        est.shift_history(True)
        assert est.primary.history.bits == 1
        assert est.secondary.history.bits == 1

    def test_reset(self, simple_trace):
        est = AgreementEstimator(*make_pair())
        FrontEnd(make_baseline_hybrid(), est).replay(simple_trace.slice(0, 800))
        est.reset()
        assert not est.primary.array.snapshot().any()


class TestCascadeEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            CascadeEstimator(*make_pair(), neutral_band=-1)

    def test_defers_in_neutral_band(self):
        est = CascadeEstimator(*make_pair(), neutral_band=30)
        # Cold perceptron output 0 is inside the band; JRS (counter 0)
        # flags low -> cascade flags low.
        assert est.estimate(0x40, True).low_confidence

    def test_primary_decides_outside_band(self, simple_trace):
        est = CascadeEstimator(*make_pair(), neutral_band=5)
        frontend = FrontEnd(make_baseline_hybrid(), est)
        frontend.replay(simple_trace, warmup=1000)
        # Drive primary strongly high-confidence for a deterministic pc,
        # then the cascade must report high even if JRS would flag.
        pc = simple_trace[0].pc
        sig = est.primary.estimate(pc, True)
        if abs(sig.raw) > 5:
            assert est.estimate(pc, True).low_confidence == (
                sig.low_confidence
            )

    def test_coverage_between_components(self, simple_trace):
        """The cascade lands between perceptron and JRS coverage."""
        def run(est):
            frontend = FrontEnd(make_baseline_hybrid(), est)
            return frontend.replay(simple_trace, warmup=1000).metrics.overall

        perc = run(PerceptronConfidenceEstimator(threshold=0))
        jrs = run(JRSEstimator(threshold=7))
        cascade = run(CascadeEstimator(*make_pair(), neutral_band=40))
        assert perc.spec <= cascade.spec <= jrs.spec

"""Unit tests for the Jimenez-Lin perceptron predictor."""

import pytest

from repro.common.history import GlobalHistoryRegister
from repro.predictors.perceptron_predictor import (
    PerceptronPredictor,
    jimenez_lin_theta,
)


class TestTheta:
    def test_formula(self):
        assert jimenez_lin_theta(24) == int(1.93 * 24 + 14)
        assert jimenez_lin_theta(32) == int(1.93 * 32 + 14)


class TestPerceptronPredictor:
    def test_default_theta(self):
        p = PerceptronPredictor(entries=32, history_length=16)
        assert p.theta == jimenez_lin_theta(16)

    def test_learns_bias(self):
        p = PerceptronPredictor(entries=32, history_length=8)
        pc = 0x400000
        for _ in range(50):
            p.update(pc, True, p.predict(pc))
        assert p.predict(pc) is True
        assert p.output(pc) > 0

    def test_learns_history_correlation(self):
        p = PerceptronPredictor(entries=32, history_length=8)
        pc = 0x400000
        wrong = 0
        for i in range(500):
            taken = bool((p.history.bits >> 2) & 1)
            pred = p.predict(pc)
            if i > 100 and pred != taken:
                wrong += 1
            p.update(pc, taken, pred)
        assert wrong < 20

    def test_training_stops_past_theta(self):
        p = PerceptronPredictor(entries=4, history_length=4, theta=5)
        pc = 0
        for _ in range(100):
            p.update(pc, True, p.predict(pc))
        # Output magnitude settles just beyond theta, not at saturation.
        assert 5 < p.output(pc) <= 5 + 5  # one training step past theta

    def test_shared_history(self):
        ghr = GlobalHistoryRegister(16)
        p = PerceptronPredictor(entries=8, history_length=16, shared_history=ghr)
        p.update(0x40, True, p.predict(0x40))
        assert ghr.bits == 0

    def test_shared_history_too_short(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(
                entries=8, history_length=16,
                shared_history=GlobalHistoryRegister(8),
            )

    def test_confidence_hint_grows_with_training(self):
        p = PerceptronPredictor(entries=8, history_length=8)
        pc = 0x40
        weak = p.confidence_hint(pc)
        for _ in range(60):
            p.update(pc, True, p.predict(pc))
        assert p.confidence_hint(pc) > weak

    def test_storage(self):
        p = PerceptronPredictor(entries=512, history_length=24, weight_bits=8)
        assert p.storage_bits == 512 * 25 * 8

    def test_reset(self):
        p = PerceptronPredictor(entries=8, history_length=8)
        for _ in range(20):
            p.update(0x40, True, p.predict(0x40))
        p.reset()
        assert p.output(0x40) == 0
        assert p.history.bits == 0

"""Unit tests for multi-seed stability analysis."""

import pytest

from repro.analysis.stability import MetricSpread, sweep_seeds


class TestMetricSpread:
    def test_statistics(self):
        spread = MetricSpread(name="m", values=(1.0, 2.0, 3.0))
        assert spread.n == 3
        assert spread.mean == pytest.approx(2.0)
        assert spread.std == pytest.approx(1.0)
        assert spread.min == 1.0
        assert spread.max == 3.0
        assert spread.relative_std == pytest.approx(0.5)

    def test_single_sample(self):
        spread = MetricSpread(name="m", values=(4.0,))
        assert spread.std == 0.0
        assert spread.mean == 4.0

    def test_zero_mean_relative_std(self):
        spread = MetricSpread(name="m", values=(-1.0, 1.0))
        assert spread.relative_std == 0.0

    def test_as_dict(self):
        d = MetricSpread(name="x", values=(1.0, 1.0)).as_dict()
        assert d["metric"] == "x"
        assert d["rel std %"] == 0.0


class TestSweepSeeds:
    def test_aggregates_per_metric(self):
        spreads = sweep_seeds(
            lambda seed: {"a": float(seed), "b": 2.0 * seed}, seeds=(1, 2, 3)
        )
        by_name = {s.name: s for s in spreads}
        assert by_name["a"].values == (1.0, 2.0, 3.0)
        assert by_name["b"].mean == pytest.approx(4.0)

    def test_metric_set_must_match(self):
        def measure(seed):
            return {"a": 1.0} if seed == 1 else {"b": 1.0}

        with pytest.raises(ValueError, match="expected"):
            sweep_seeds(measure, seeds=(1, 2))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            sweep_seeds(lambda s: {"a": 1.0}, seeds=())

    def test_sorted_output(self):
        spreads = sweep_seeds(lambda s: {"z": 1.0, "a": 2.0}, seeds=(1,))
        assert [s.name for s in spreads] == ["a", "z"]


class TestExperimentIntegration:
    def test_seed_stability_experiment(self):
        from repro.experiments import seed_stability
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(
            n_branches=5_000, warmup=1_500, benchmarks=("gzip",)
        )
        result = seed_stability.run(settings, seeds=(1, 2))
        assert result.spread("accuracy_ratio").n == 2
        assert result.spread("perceptron_pvn").mean > 0
        assert "Seed stability" in result.format()

    def test_history_ablation_experiment(self):
        from repro.experiments import ablation_history
        from repro.experiments.common import ExperimentSettings

        settings = ExperimentSettings(
            n_branches=5_000, warmup=1_500, benchmarks=("gzip",)
        )
        result = ablation_history.run(settings)
        assert len(result.rows) == len(ablation_history.HISTORY_LENGTHS)
        for row in result.rows:
            assert 0 <= row.pvn <= 1
            assert row.flagged_mispredicts_per_kbranch >= 0
        assert "History-reach" in result.format()

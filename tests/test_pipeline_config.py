"""Unit tests for repro.pipeline.config."""

import pytest

from repro.pipeline.config import (
    BASELINE_40X4,
    PIPELINE_PRESETS,
    STANDARD_20X4,
    WIDE_20X8,
    PipelineConfig,
)


class TestValidation:
    def test_defaults_valid(self):
        cfg = PipelineConfig()
        assert cfg.depth == 40
        assert cfg.fetch_width == 4

    def test_bounds(self):
        with pytest.raises(ValueError):
            PipelineConfig(fetch_width=0)
        with pytest.raises(ValueError):
            PipelineConfig(depth=1)
        with pytest.raises(ValueError):
            PipelineConfig(rob_size=2, fetch_width=4)
        with pytest.raises(ValueError):
            PipelineConfig(base_uop_cycles=-1)
        with pytest.raises(ValueError):
            PipelineConfig(resolve_jitter=-1)
        with pytest.raises(ValueError):
            PipelineConfig(estimator_latency=-1)
        with pytest.raises(ValueError):
            PipelineConfig(gating_threshold=0)


class TestDerived:
    def test_fetch_cycles(self):
        assert PipelineConfig(fetch_width=4).uop_fetch_cycles == 0.25

    def test_retire_rate(self):
        assert PipelineConfig(base_uop_cycles=0.5).retire_rate == 2.0

    def test_wrong_path_cap_is_window(self):
        assert PipelineConfig(rob_size=128).wrong_path_cap == 128

    def test_with_gating(self):
        cfg = BASELINE_40X4.with_gating(3)
        assert cfg.gating_threshold == 3
        assert cfg.depth == BASELINE_40X4.depth
        cfg2 = BASELINE_40X4.with_gating(2, estimator_latency=9)
        assert cfg2.estimator_latency == 9

    def test_label(self):
        assert BASELINE_40X4.label() == "40c/4w"
        assert WIDE_20X8.label() == "20c/8w"

    def test_frozen(self):
        with pytest.raises(Exception):
            BASELINE_40X4.depth = 10


class TestPresets:
    def test_paper_machines(self):
        assert PIPELINE_PRESETS["40c4w"].depth == 40
        assert PIPELINE_PRESETS["20c8w"].fetch_width == 8
        assert PIPELINE_PRESETS["20c4w"].depth == 20

    def test_table1_window(self):
        assert BASELINE_40X4.rob_size == 128

    def test_wide_machine_faster_backend(self):
        assert WIDE_20X8.retire_rate > STANDARD_20X4.retire_rate

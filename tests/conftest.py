"""Shared fixtures for the test suite.

Traces are expensive to generate, so the commonly used ones are session
scoped; tests must treat them as read-only.
"""

import pytest

from repro.trace.benchmarks import generate_benchmark_trace
from repro.trace.behaviors import BiasedBehavior, RandomBehavior
from repro.trace.generator import StaticBranch, TraceGenerator, WorkloadSpec


@pytest.fixture(scope="session")
def gzip_trace():
    """A small gzip benchmark trace (read-only)."""
    return generate_benchmark_trace("gzip", n_branches=12_000, seed=7)


@pytest.fixture(scope="session")
def gcc_trace():
    """A small gcc benchmark trace (read-only)."""
    return generate_benchmark_trace("gcc", n_branches=12_000, seed=7)


def make_simple_workload(name="simple", extra=None, uops_per_branch=8.0):
    """A deterministic-plus-random workload for predictor tests."""
    spec = WorkloadSpec(name=name, uops_per_branch=uops_per_branch)
    pc = 0x40_0000
    for i in range(10):
        behavior = BiasedBehavior(1.0 if i % 2 == 0 else 0.0)
        spec.add(StaticBranch(pc=pc, behavior=behavior))
        pc += 52
    spec.add(StaticBranch(pc=pc, behavior=RandomBehavior(), weight=0.5))
    if extra:
        pc += 52
        for behavior, weight in extra:
            spec.add(StaticBranch(pc=pc, behavior=behavior, weight=weight))
            pc += 52
    return spec


@pytest.fixture()
def simple_trace():
    """A fresh 4k-branch deterministic-plus-random trace."""
    spec = make_simple_workload()
    return TraceGenerator(spec, seed=3).generate(4_000)

"""Unit tests for repro.core.types and repro.core.metrics."""

import pytest

from repro.core.metrics import ConfidenceMatrix, MetricsCollector
from repro.core.types import ConfidenceLevel, ConfidenceSignal


class TestConfidenceLevel:
    def test_is_low(self):
        assert not ConfidenceLevel.HIGH.is_low
        assert ConfidenceLevel.WEAK_LOW.is_low
        assert ConfidenceLevel.STRONG_LOW.is_low


class TestConfidenceSignal:
    def test_constructors(self):
        assert ConfidenceSignal.high(1.0).level is ConfidenceLevel.HIGH
        assert ConfidenceSignal.weak_low(2.0).low_confidence
        assert ConfidenceSignal.strong_low(3.0).level is ConfidenceLevel.STRONG_LOW

    def test_consistency_enforced(self):
        with pytest.raises(ValueError):
            ConfidenceSignal(True, 0.0, ConfidenceLevel.HIGH)
        with pytest.raises(ValueError):
            ConfidenceSignal(False, 0.0, ConfidenceLevel.WEAK_LOW)

    def test_frozen(self):
        sig = ConfidenceSignal.high(0.0)
        with pytest.raises(AttributeError):
            sig.raw = 5.0


class TestConfidenceMatrix:
    def matrix(self):
        m = ConfidenceMatrix()
        # 10 mispredicted: 7 flagged low, 3 missed.
        for _ in range(7):
            m.record(True, True)
        for _ in range(3):
            m.record(False, True)
        # 90 correct: 5 falsely flagged low.
        for _ in range(5):
            m.record(True, False)
        for _ in range(85):
            m.record(False, False)
        return m

    def test_counts(self):
        m = self.matrix()
        assert m.total == 100
        assert m.mispredicted == 10
        assert m.correct == 90
        assert m.flagged_low == 12
        assert m.flagged_high == 88

    def test_spec_is_coverage(self):
        assert self.matrix().spec == pytest.approx(0.7)

    def test_pvn_is_accuracy(self):
        assert self.matrix().pvn == pytest.approx(7 / 12)

    def test_sens_and_pvp(self):
        m = self.matrix()
        assert m.sens == pytest.approx(85 / 90)
        assert m.pvp == pytest.approx(85 / 88)

    def test_misprediction_rate(self):
        assert self.matrix().misprediction_rate == pytest.approx(0.1)

    def test_empty_matrix_safe(self):
        m = ConfidenceMatrix()
        assert m.spec == 0.0
        assert m.pvn == 0.0
        assert m.sens == 0.0
        assert m.pvp == 0.0

    def test_merge(self):
        a, b = self.matrix(), self.matrix()
        merged = a.merge(b)
        assert merged.total == 200
        assert merged.pvn == a.pvn  # same composition

    def test_identity_spec_pvn_relationship(self):
        # spec * mispredicted == pvn * flagged_low == true positives.
        m = self.matrix()
        assert m.spec * m.mispredicted == pytest.approx(m.pvn * m.flagged_low)

    def test_as_dict(self):
        d = self.matrix().as_dict()
        assert d["total"] == 100
        assert 0 < d["pvn"] < 1


class TestMetricsCollector:
    def test_overall_accumulates(self):
        c = MetricsCollector()
        c.record(0x40, True, True)
        c.record(0x40, False, False)
        assert c.overall.total == 2

    def test_per_pc_disabled_by_default(self):
        c = MetricsCollector()
        c.record(0x40, True, True)
        assert c.per_pc == {}

    def test_per_pc_tracking(self):
        c = MetricsCollector(track_per_pc=True)
        c.record(0x40, True, True)
        c.record(0x44, False, False)
        assert c.per_pc[0x40].low_mispredicted == 1
        assert c.per_pc[0x44].high_correct == 1

    def test_reset(self):
        c = MetricsCollector(track_per_pc=True)
        c.record(0x40, True, True)
        c.reset()
        assert c.overall.total == 0
        assert c.per_pc == {}

"""Property-based tests (hypothesis) for core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bits import (
    bits_to_pm1,
    fold_bits,
    mask,
    pm1_to_bits,
    to_signed,
    to_unsigned,
)
from repro.common.counters import CounterTable, ResettingCounter, SaturatingCounter
from repro.common.history import GlobalHistoryRegister
from repro.common.perceptron import PerceptronArray
from repro.core.metrics import ConfidenceMatrix


class TestBitsProperties:
    @given(st.integers(min_value=0, max_value=(1 << 62) - 1),
           st.integers(min_value=1, max_value=32))
    def test_fold_fits_width(self, value, width):
        assert 0 <= fold_bits(value, width) <= mask(width)

    @given(st.integers(min_value=0, max_value=(1 << 30) - 1),
           st.integers(min_value=1, max_value=30))
    def test_fold_idempotent_when_fits(self, value, width):
        if value <= mask(width):
            assert fold_bits(value, width) == value

    @given(st.integers(min_value=2, max_value=16), st.integers())
    def test_signed_unsigned_roundtrip(self, bits, value):
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        clamped = max(lo, min(hi, value))
        assert to_signed(to_unsigned(clamped, bits), bits) == clamped

    @given(st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_pm1_roundtrip(self, bits):
        assert pm1_to_bits(bits_to_pm1(bits, 20)) == bits


class TestCounterProperties:
    @given(st.lists(st.booleans(), max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_saturating_counter_in_range(self, updates, bits):
        c = SaturatingCounter(bits=bits)
        for up in updates:
            c.update(up)
            assert 0 <= c.value <= c.max_value

    @given(st.lists(st.booleans(), max_size=200))
    def test_resetting_counter_is_streak_length(self, events):
        c = ResettingCounter(bits=8)
        streak = 0
        for correct in events:
            c.record(correct)
            streak = min(streak + 1, 255) if correct else 0
            assert c.value == streak

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
            max_size=200,
        )
    )
    def test_counter_table_in_range(self, updates):
        t = CounterTable(entries=16, bits=3, mode="saturating", initial=4)
        for index, up in updates:
            value = t.update(index, up)
            assert 0 <= value <= 7


class TestHistoryProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_bits_match_recent_outcomes(self, outcomes):
        ghr = GlobalHistoryRegister(16)
        for taken in outcomes:
            ghr.push(taken)
        recent = outcomes[::-1][:16]
        for i, taken in enumerate(recent):
            assert ((ghr.bits >> i) & 1) == int(taken)

    @given(st.lists(st.booleans(), max_size=100))
    def test_vector_and_bits_consistent(self, outcomes):
        ghr = GlobalHistoryRegister(12)
        for taken in outcomes:
            ghr.push(taken)
        for i in range(12):
            expected = 1 if (ghr.bits >> i) & 1 else -1
            assert ghr.vector[i] == expected


class TestPerceptronProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.sampled_from([1, -1]),
            ),
            max_size=150,
        )
    )
    @settings(max_examples=40)
    def test_weights_always_in_range(self, steps):
        arr = PerceptronArray(entries=4, history_length=8, weight_bits=5)
        lo, hi = arr.weight_range
        for bits, target in steps:
            x = np.array(bits_to_pm1(bits, 8), dtype=np.int8)
            arr.train(0, x, target)
            w = arr.weights_for(0)
            assert w.min() >= lo and w.max() <= hi

    @given(st.integers(min_value=0, max_value=255))
    def test_output_bounded(self, bits):
        arr = PerceptronArray(entries=1, history_length=8, weight_bits=4)
        x = np.array(bits_to_pm1(bits, 8), dtype=np.int8)
        for _ in range(50):
            arr.train(0, x, 1)
        assert abs(arr.output(0, x)) <= arr.max_output

    @given(st.integers(min_value=0, max_value=255), st.sampled_from([1, -1]))
    def test_training_never_moves_away(self, bits, target):
        arr = PerceptronArray(entries=1, history_length=8, weight_bits=8)
        x = np.array(bits_to_pm1(bits, 8), dtype=np.int8)
        before = arr.output(0, x)
        arr.train(0, x, target)
        after = arr.output(0, x)
        if target == 1:
            assert after >= before
        else:
            assert after <= before


class TestMetricsProperties:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=300))
    def test_matrix_identities(self, events):
        m = ConfidenceMatrix()
        for low, mis in events:
            m.record(low, mis)
        assert m.total == len(events)
        assert m.mispredicted + m.correct == m.total
        assert m.flagged_low + m.flagged_high == m.total
        assert 0.0 <= m.spec <= 1.0
        assert 0.0 <= m.pvn <= 1.0
        # True positives counted consistently from both directions.
        assert m.spec * m.mispredicted == m.pvn * m.flagged_low or (
            m.mispredicted == 0 or m.flagged_low == 0
        )


class TestTraceProperties:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_generator_deterministic(self, seed):
        from repro.trace.behaviors import BiasedBehavior, RandomBehavior
        from repro.trace.generator import StaticBranch, TraceGenerator, WorkloadSpec

        def build():
            spec = WorkloadSpec(name="p")
            spec.add(StaticBranch(pc=0x100, behavior=BiasedBehavior(0.9)))
            spec.add(StaticBranch(pc=0x200, behavior=RandomBehavior()))
            return TraceGenerator(spec, seed=seed).generate(300)

        a, b = build(), build()
        assert [(r.pc, r.taken, r.uops_before) for r in a] == [
            (r.pc, r.taken, r.uops_before) for r in b
        ]

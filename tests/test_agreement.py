"""Unit tests for the component-agreement estimator."""

import pytest

from repro.common.history import GlobalHistoryRegister
from repro.core.agreement import ComponentAgreementEstimator
from repro.core.frontend import FrontEnd
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.hybrid import CombinedPredictor, make_baseline_hybrid
from repro.predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor


def conflicted_hybrid():
    history = GlobalHistoryRegister(4)
    return CombinedPredictor(
        AlwaysTakenPredictor(), AlwaysNotTakenPredictor(), history,
        meta_entries=16,
    )


class TestClassification:
    def test_requires_hybrid(self):
        with pytest.raises(TypeError):
            ComponentAgreementEstimator(BimodalPredictor(entries=16))

    def test_disagreement_is_low_confidence(self):
        est = ComponentAgreementEstimator(conflicted_hybrid())
        assert est.estimate(0x40, True).low_confidence

    def test_agreement_is_high_confidence(self):
        history = GlobalHistoryRegister(4)
        hybrid = CombinedPredictor(
            AlwaysTakenPredictor(), AlwaysTakenPredictor(), history,
            meta_entries=16,
        )
        est = ComponentAgreementEstimator(hybrid)
        assert not est.estimate(0x40, True).low_confidence

    def test_strong_chooser_requirement(self):
        hybrid = make_baseline_hybrid()
        est = ComponentAgreementEstimator(hybrid, require_strong_chooser=True)
        # Fresh counters sit at the weak midpoint: even agreement is
        # flagged until the counters strengthen.
        sig = est.estimate(0x40, True)
        assert sig.low_confidence
        pc = 0x40
        # Train without shifting history so the same gshare context
        # saturates (update() would move to a fresh weak context each
        # time on this toy stream).
        for _ in range(6):
            hybrid.train(pc, True, hybrid.predict(pc))
        assert not est.estimate(pc, True).low_confidence

    def test_zero_storage(self):
        assert ComponentAgreementEstimator(conflicted_hybrid()).storage_bits == 0


class TestOnStream:
    def test_middle_of_the_plane(self, gzip_trace):
        """Agreement confidence lands between Smith-like and JRS-like
        behaviour: meaningful coverage, meaningful accuracy, no storage."""
        hybrid = make_baseline_hybrid()
        est = ComponentAgreementEstimator(hybrid)
        result = FrontEnd(hybrid, est).replay(gzip_trace, warmup=4000)
        matrix = result.metrics.overall
        assert matrix.flagged_low > 0
        assert matrix.spec > 0.1
        # Accuracy beats random flagging by a wide margin.
        assert matrix.pvn > 2 * matrix.misprediction_rate

"""Unit tests for repro.trace.io."""

import pytest

from repro.trace.io import load_trace, save_trace
from repro.trace.record import BranchRecord, Trace


def sample_trace():
    records = [
        BranchRecord(pc=0x400000, taken=True, uops_before=7),
        BranchRecord(pc=0x400034, taken=False, uops_before=0),
        BranchRecord(pc=0x400000, taken=True, uops_before=12),
    ]
    return Trace(records, name="sample", seed=99)


def assert_traces_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert (ra.pc, ra.taken, ra.uops_before) == (rb.pc, rb.taken, rb.uops_before)


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.btrace")
        save_trace(sample_trace(), path)
        loaded = load_trace(path)
        assert_traces_equal(sample_trace(), loaded)
        assert loaded.name == "sample"
        assert loaded.seed == 99

    def test_human_readable(self, tmp_path):
        path = str(tmp_path / "t.btrace")
        save_trace(sample_trace(), path)
        text = open(path).read()
        assert "# name: sample" in text
        assert "0x400000 1 7" in text

    def test_bad_line_rejected(self, tmp_path):
        path = str(tmp_path / "bad.btrace")
        with open(path, "w") as fh:
            fh.write("0x400000 1\n")
        with pytest.raises(ValueError, match="expected"):
            load_trace(path)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = str(tmp_path / "c.btrace")
        with open(path, "w") as fh:
            fh.write("# a comment\n\n0x10 1 3\n")
        loaded = load_trace(path)
        assert len(loaded) == 1
        assert loaded[0].uops_before == 3


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.npz")
        save_trace(sample_trace(), path)
        loaded = load_trace(path)
        assert_traces_equal(sample_trace(), loaded)
        assert loaded.name == "sample"
        assert loaded.seed == 99

    def test_none_seed_roundtrip(self, tmp_path):
        path = str(tmp_path / "n.npz")
        save_trace(Trace([BranchRecord(pc=4, taken=True)], name="x"), path)
        assert load_trace(path).seed is None


class TestEdgeCases:
    """Regression coverage for boundary payloads in both formats."""

    @pytest.mark.parametrize("ext", [".btrace", ".npz"])
    def test_zero_length_roundtrip(self, tmp_path, ext):
        path = str(tmp_path / f"empty{ext}")
        save_trace(Trace([], name="empty", seed=5), path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"
        assert loaded.seed == 5

    @pytest.mark.parametrize("ext", [".btrace", ".npz"])
    def test_oversized_pc_roundtrip(self, tmp_path, ext):
        """pcs beyond uint64 must survive (binary uses the hex column)."""
        wide = Trace(
            [
                BranchRecord(pc=(1 << 80) + 12, taken=True, uops_before=1),
                BranchRecord(pc=0x400000, taken=False, uops_before=2),
            ],
            name="wide",
            seed=1,
        )
        path = str(tmp_path / f"wide{ext}")
        save_trace(wide, path)
        assert_traces_equal(wide, load_trace(path))

    def test_oversized_pc_uses_hex_column(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "wide.npz")
        save_trace(
            Trace([BranchRecord(pc=1 << 70, taken=True)], name="w"), path
        )
        with np.load(path, allow_pickle=False) as data:
            assert "pcs_hex" in data.files
            assert "pcs" not in data.files

    def test_uint64_boundary_pc_stays_in_integer_column(self, tmp_path):
        import numpy as np

        boundary = (1 << 64) - 1
        path = str(tmp_path / "b.npz")
        save_trace(
            Trace([BranchRecord(pc=boundary, taken=True)], name="b"), path
        )
        with np.load(path, allow_pickle=False) as data:
            assert "pcs" in data.files
        assert load_trace(path)[0].pc == boundary


class TestFormatDetection:
    def test_unknown_extension_rejected(self):
        with pytest.raises(ValueError, match="extension"):
            save_trace(sample_trace(), "trace.bin")

    def test_generated_trace_roundtrip(self, tmp_path, simple_trace):
        for ext in (".btrace", ".npz"):
            path = str(tmp_path / f"g{ext}")
            save_trace(simple_trace, path)
            assert_traces_equal(simple_trace, load_trace(path))

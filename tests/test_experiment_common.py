"""Unit tests for the shared experiment infrastructure."""

import pytest

from repro.engine import ALWAYS_HIGH, GATING_POLICY, EstimatorSpec
from repro.experiments.common import (
    ExperimentSettings,
    get_trace,
    job_for,
    replay_benchmark,
    run_jobs,
    simulate_events,
    weighted_average,
)
from repro.pipeline.config import BASELINE_40X4

SMALL = ExperimentSettings(
    n_branches=4_000, warmup=1_000, benchmarks=("gzip",)
)

JRS7 = EstimatorSpec.of("jrs", threshold=7)


class TestGetTrace:
    def test_cached(self):
        a = get_trace("gzip", 3_000, 5)
        b = get_trace("gzip", 3_000, 5)
        assert a is b

    def test_distinct_keys(self):
        assert get_trace("gzip", 3_000, 5) is not get_trace("gzip", 3_000, 6)


class TestReplayBenchmark:
    def test_event_count_excludes_warmup(self):
        events, result = replay_benchmark("gzip", SMALL, ALWAYS_HIGH)
        assert len(events) == SMALL.n_branches - SMALL.warmup
        assert result.branches == len(events)

    def test_policy_decisions_present(self):
        events, _ = replay_benchmark(
            "gzip", SMALL, JRS7, policy=GATING_POLICY
        )
        assert any(e.decision.counts_toward_gating for e in events)

    def test_collect_outputs(self):
        _, result = replay_benchmark(
            "gzip", SMALL, JRS7, collect_outputs=True
        )
        total = len(result.outputs_correct) + len(result.outputs_mispredicted)
        assert total == result.branches


class TestRunJobs:
    def test_batch_order_matches_jobs(self):
        jobs = [
            job_for(SMALL, "gzip", ALWAYS_HIGH),
            job_for(SMALL, "gzip", JRS7),
            job_for(SMALL, "gzip", ALWAYS_HIGH),
        ]
        outcomes = run_jobs(jobs)
        assert len(outcomes) == 3
        # Duplicate jobs resolve to the identical cached outcome.
        assert outcomes[0].events is outcomes[2].events

    def test_repeat_is_cache_hit(self):
        job = job_for(SMALL, "gzip", JRS7)
        first = run_jobs([job])[0]
        second = run_jobs([job])[0]
        assert second.from_cache
        assert first.result.branches == second.result.branches


class TestSimulateEvents:
    def test_runs_over_replay(self):
        events, _ = replay_benchmark("gzip", SMALL, ALWAYS_HIGH)
        stats = simulate_events(events, BASELINE_40X4)
        assert stats.branches == len(events)
        assert stats.total_cycles > 0

    def test_rerunnable(self):
        events, _ = replay_benchmark("gzip", SMALL, ALWAYS_HIGH)
        a = simulate_events(events, BASELINE_40X4)
        b = simulate_events(events, BASELINE_40X4)
        assert a.total_cycles == b.total_cycles


class TestWeightedAverage:
    def test_basic(self):
        assert weighted_average([1.0, 3.0], [1.0, 1.0]) == 2.0
        assert weighted_average([1.0, 3.0], [3.0, 1.0]) == 1.5

    def test_zero_weights(self):
        assert weighted_average([1.0], [0.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_average([1.0], [1.0, 2.0])


class TestRunnerCli:
    def test_main_quick_single(self, capsys):
        from repro.experiments.runner import main

        assert main(["--branches", "4000", "figure6_7"]) == 0
        assert "figure6_7" in capsys.readouterr().out

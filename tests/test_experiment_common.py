"""Unit tests for the shared experiment infrastructure."""

import pytest

from repro.core.estimator import AlwaysHighEstimator
from repro.core.jrs import JRSEstimator
from repro.core.reversal import GatingOnlyPolicy
from repro.experiments.common import (
    ExperimentSettings,
    get_trace,
    replay_benchmark,
    simulate_events,
    weighted_average,
)
from repro.pipeline.config import BASELINE_40X4

SMALL = ExperimentSettings(
    n_branches=4_000, warmup=1_000, benchmarks=("gzip",)
)


class TestGetTrace:
    def test_cached(self):
        a = get_trace("gzip", 3_000, 5)
        b = get_trace("gzip", 3_000, 5)
        assert a is b

    def test_distinct_keys(self):
        assert get_trace("gzip", 3_000, 5) is not get_trace("gzip", 3_000, 6)


class TestReplayBenchmark:
    def test_event_count_excludes_warmup(self):
        events, result = replay_benchmark(
            "gzip", SMALL, make_estimator=AlwaysHighEstimator
        )
        assert len(events) == SMALL.n_branches - SMALL.warmup
        assert result.branches == len(events)

    def test_policy_decisions_present(self):
        events, _ = replay_benchmark(
            "gzip",
            SMALL,
            make_estimator=lambda: JRSEstimator(threshold=7),
            policy=GatingOnlyPolicy(),
        )
        assert any(e.decision.counts_toward_gating for e in events)

    def test_collect_outputs(self):
        _, result = replay_benchmark(
            "gzip",
            SMALL,
            make_estimator=lambda: JRSEstimator(threshold=7),
            collect_outputs=True,
        )
        total = len(result.outputs_correct) + len(result.outputs_mispredicted)
        assert total == result.branches


class TestSimulateEvents:
    def test_runs_over_replay(self):
        events, _ = replay_benchmark(
            "gzip", SMALL, make_estimator=AlwaysHighEstimator
        )
        stats = simulate_events(events, BASELINE_40X4)
        assert stats.branches == len(events)
        assert stats.total_cycles > 0

    def test_rerunnable(self):
        events, _ = replay_benchmark(
            "gzip", SMALL, make_estimator=AlwaysHighEstimator
        )
        a = simulate_events(events, BASELINE_40X4)
        b = simulate_events(events, BASELINE_40X4)
        assert a.total_cycles == b.total_cycles


class TestWeightedAverage:
    def test_basic(self):
        assert weighted_average([1.0, 3.0], [1.0, 1.0]) == 2.0
        assert weighted_average([1.0, 3.0], [3.0, 1.0]) == 1.5

    def test_zero_weights(self):
        assert weighted_average([1.0], [0.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_average([1.0], [1.0, 2.0])


class TestRunnerCli:
    def test_main_quick_single(self, capsys):
        from repro.experiments.runner import main

        assert main(["--branches", "4000", "figure6_7"]) == 0
        assert "figure6_7" in capsys.readouterr().out

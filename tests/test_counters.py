"""Unit tests for repro.common.counters."""

import pytest

from repro.common.counters import CounterTable, ResettingCounter, SaturatingCounter


class TestSaturatingCounter:
    def test_initial_state(self):
        c = SaturatingCounter(bits=2)
        assert c.value == 0
        assert c.max_value == 3

    def test_saturates_high(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.increment()
        assert c.value == 3

    def test_saturates_low(self):
        c = SaturatingCounter(bits=2, initial=1)
        for _ in range(5):
            c.decrement()
        assert c.value == 0

    def test_update_direction(self):
        c = SaturatingCounter(bits=3, initial=4)
        c.update(True)
        assert c.value == 5
        c.update(False)
        assert c.value == 4

    def test_msb_is_decision_bit(self):
        c = SaturatingCounter(bits=2, initial=1)
        assert not c.msb()
        c.increment()
        assert c.msb()

    def test_is_saturated(self):
        c = SaturatingCounter(bits=2, initial=0)
        assert c.is_saturated()
        c.increment()
        assert not c.is_saturated()
        c.reset(3)
        assert c.is_saturated()

    def test_reset_validation(self):
        c = SaturatingCounter(bits=2)
        with pytest.raises(ValueError):
            c.reset(4)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=5)


class TestResettingCounter:
    def test_counts_correct_streak(self):
        c = ResettingCounter(bits=4)
        for i in range(5):
            c.record(True)
        assert c.value == 5

    def test_reset_on_miss(self):
        c = ResettingCounter(bits=4)
        for _ in range(7):
            c.record(True)
        c.record(False)
        assert c.value == 0

    def test_saturates(self):
        c = ResettingCounter(bits=4)
        for _ in range(100):
            c.record(True)
        assert c.value == 15

    def test_miss_distance_semantics(self):
        c = ResettingCounter(bits=4)
        c.record(True)
        c.record(False)
        c.record(True)
        c.record(True)
        assert c.value == 2  # two corrects since the last miss


class TestCounterTable:
    def test_saturating_update(self):
        t = CounterTable(entries=8, bits=2, mode="saturating", initial=1)
        t.update(3, True)
        assert t.read(3) == 2
        t.update(3, False)
        assert t.read(3) == 1

    def test_resetting_update(self):
        t = CounterTable(entries=8, bits=4, mode="resetting")
        for _ in range(6):
            t.update(2, True)
        assert t.read(2) == 6
        t.update(2, False)
        assert t.read(2) == 0

    def test_index_wraps(self):
        t = CounterTable(entries=8, bits=2)
        t.write(3, 3)
        assert t.read(3 + 8) == 3
        assert t.read(3 + 80) == 3

    def test_entries_independent(self):
        t = CounterTable(entries=4, bits=2)
        t.update(0, True)
        assert t.read(1) == 0

    def test_msb(self):
        t = CounterTable(entries=4, bits=2, initial=2)
        assert t.msb(0)
        t.update(0, False)
        assert not t.msb(0)

    def test_fill(self):
        t = CounterTable(entries=4, bits=2)
        t.fill(3)
        assert all(t.read(i) == 3 for i in range(4))

    def test_storage_bits(self):
        t = CounterTable(entries=8192, bits=4)
        assert t.storage_bits == 8192 * 4
        assert t.storage_bits / 8 / 1024 == 4.0  # the paper's 4KB JRS table

    def test_snapshot_is_copy(self):
        t = CounterTable(entries=4, bits=2)
        snap = t.snapshot()
        snap[:] = 3
        assert t.read(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterTable(entries=0)
        with pytest.raises(ValueError):
            CounterTable(entries=4, bits=0)
        with pytest.raises(ValueError):
            CounterTable(entries=4, mode="bogus")
        with pytest.raises(ValueError):
            CounterTable(entries=4, bits=2, initial=9)
        t = CounterTable(entries=4, bits=2)
        with pytest.raises(ValueError):
            t.write(0, 4)
        with pytest.raises(ValueError):
            t.fill(-1)

"""Unit tests for the predictor family (bimodal, gshare, local, static)."""

import pytest

from repro.predictors.base import PredictorStats
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor


class TestPredictorStats:
    def test_accuracy(self):
        stats = PredictorStats()
        for correct in (True, True, False, True):
            stats.record(correct)
        assert stats.predictions == 4
        assert stats.mispredictions == 1
        assert stats.accuracy == pytest.approx(0.75)
        assert stats.misprediction_rate == pytest.approx(0.25)

    def test_empty(self):
        stats = PredictorStats()
        assert stats.accuracy == 0.0
        assert stats.misprediction_rate == 0.0

    def test_reset(self):
        stats = PredictorStats()
        stats.record(False)
        stats.reset()
        assert stats.predictions == 0


class TestStaticPredictors:
    def test_always_taken(self):
        p = AlwaysTakenPredictor()
        assert p.predict(0x1234)
        p.update(0x1234, False, True)
        assert p.stats.mispredictions == 1
        assert p.storage_bits == 0

    def test_always_not_taken(self):
        p = AlwaysNotTakenPredictor()
        assert not p.predict(0x1234)
        p.update(0x1234, False, False)
        assert p.stats.mispredictions == 0


class TestBimodal:
    def test_learns_bias(self):
        p = BimodalPredictor(entries=64)
        pc = 0x400000
        for _ in range(4):
            p.update(pc, False, p.predict(pc))
        assert p.predict(pc) is False

    def test_hysteresis(self):
        p = BimodalPredictor(entries=64)
        pc = 0x400000
        for _ in range(4):
            p.update(pc, True, p.predict(pc))
        # One contrary outcome must not flip a saturated counter.
        p.update(pc, False, p.predict(pc))
        assert p.predict(pc) is True

    def test_update_derives_prediction_when_missing(self):
        p = BimodalPredictor(entries=64)
        p.update(0x40, True)
        assert p.stats.predictions == 1

    def test_aliasing(self):
        p = BimodalPredictor(entries=16)
        pc_a = 0x400000
        pc_b = pc_a + 16 * 4  # same index after pc>>2 mod 16
        for _ in range(4):
            p.update(pc_a, True, p.predict(pc_a))
        assert p.predict(pc_b) is True

    def test_confidence_hint_range(self):
        p = BimodalPredictor(entries=16)
        hint = p.confidence_hint(0x40)
        assert hint is not None and 0.0 <= hint <= 1.0
        for _ in range(4):
            p.update(0x40, True, p.predict(0x40))
        assert p.confidence_hint(0x40) == pytest.approx(1.0)

    def test_storage(self):
        assert BimodalPredictor(entries=16384).storage_bits == 32768

    def test_reset(self):
        p = BimodalPredictor(entries=16)
        for _ in range(4):
            p.update(0x40, False, p.predict(0x40))
        p.reset()
        assert p.stats.predictions == 0
        assert p.predict(0x40) is True  # back to weakly-taken init


class TestGShare:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            GSharePredictor(entries=1000)

    def test_learns_history_correlation(self):
        p = GSharePredictor(entries=1024, history_length=4)
        pc = 0x400000
        # Outcome = history bit 1; drive history via updates.
        wrong = 0
        for i in range(400):
            taken = bool((p.history.bits >> 1) & 1)
            pred = p.predict(pc)
            if i > 100 and pred != taken:
                wrong += 1
            p.update(pc, taken, pred)
        assert wrong < 15

    def test_context_separation(self):
        p = GSharePredictor(entries=1024, history_length=2)
        pc = 0x400000
        # Same pc, different history contexts learn different outcomes.
        p.history.set_bits(0b00)
        for _ in range(3):
            p.train(pc, True, p.predict(pc))
        p.history.set_bits(0b11)
        for _ in range(3):
            p.train(pc, False, p.predict(pc))
        p.history.set_bits(0b00)
        assert p.predict(pc) is True
        p.history.set_bits(0b11)
        assert p.predict(pc) is False

    def test_shared_history_not_shifted(self):
        from repro.common.history import GlobalHistoryRegister

        ghr = GlobalHistoryRegister(8)
        p = GSharePredictor(entries=256, history_length=8, shared_history=ghr)
        p.update(0x40, True, p.predict(0x40))
        assert ghr.bits == 0  # owner shifts, not the component

    def test_own_history_shifts(self):
        p = GSharePredictor(entries=256, history_length=8)
        p.update(0x40, True, p.predict(0x40))
        assert p.history.bits == 1

    def test_shared_history_too_short_rejected(self):
        from repro.common.history import GlobalHistoryRegister

        with pytest.raises(ValueError):
            GSharePredictor(
                entries=256, history_length=10,
                shared_history=GlobalHistoryRegister(4),
            )

    def test_storage(self):
        assert GSharePredictor(entries=65536).storage_bits == 131072


class TestLocal:
    def test_learns_local_pattern(self):
        p = LocalPredictor(history_entries=64, history_length=6)
        pc = 0x400000
        pattern = [True, True, False]
        wrong = 0
        for i in range(600):
            taken = pattern[i % 3]
            pred = p.predict(pc)
            if i > 200 and pred != taken:
                wrong += 1
            p.update(pc, taken, pred)
        assert wrong < 20

    def test_local_pattern_exposed(self):
        p = LocalPredictor(history_entries=64, history_length=4)
        pc = 0x40
        for taken in (True, False, True):
            p.update(pc, taken, p.predict(pc))
        assert p.local_pattern(pc) == 0b101

    def test_reset(self):
        p = LocalPredictor(history_entries=64, history_length=4)
        p.update(0x40, True, p.predict(0x40))
        p.reset()
        assert p.local_pattern(0x40) == 0

    def test_storage_counts_both_levels(self):
        p = LocalPredictor(history_entries=2048, history_length=10)
        assert p.storage_bits == 2048 * 10 + (1 << 10) * 2

"""Unit tests for the JRS / enhanced JRS confidence estimators."""

import pytest

from repro.core.jrs import JRSEstimator


class TestConstruction:
    def test_paper_storage_budget(self):
        # 8K entries x 4 bits = 4KB, matching the perceptron estimator.
        est = JRSEstimator(entries=8192, counter_bits=4)
        assert est.storage_bits == 8192 * 4
        assert est.storage_kib == 4.0

    def test_power_of_two_entries(self):
        with pytest.raises(ValueError):
            JRSEstimator(entries=1000)

    def test_threshold_range(self):
        with pytest.raises(ValueError):
            JRSEstimator(threshold=0)
        with pytest.raises(ValueError):
            JRSEstimator(counter_bits=4, threshold=16)

    def test_names(self):
        assert "enhanced" in JRSEstimator(enhanced=True).name
        assert "enhanced" not in JRSEstimator(enhanced=False).name


class TestClassification:
    def test_cold_counter_is_low_confidence(self):
        est = JRSEstimator(threshold=7)
        assert est.estimate(0x40, True).low_confidence

    def test_high_confidence_after_streak(self):
        est = JRSEstimator(threshold=7)
        pc = 0x40
        for _ in range(7):
            sig = est.estimate(pc, True)
            est.train(pc, True, True, sig)
        assert not est.estimate(pc, True).low_confidence

    def test_threshold_semantics(self):
        """Counter >= lambda is high confidence (Section 2.3)."""
        est = JRSEstimator(threshold=3)
        pc = 0x40
        for _ in range(2):
            est.train(pc, True, True, est.estimate(pc, True))
        assert est.estimate(pc, True).low_confidence
        est.train(pc, True, True, est.estimate(pc, True))
        assert not est.estimate(pc, True).low_confidence

    def test_miss_resets_confidence(self):
        est = JRSEstimator(threshold=3)
        pc = 0x40
        for _ in range(10):
            est.train(pc, True, True, est.estimate(pc, True))
        est.train(pc, True, False, est.estimate(pc, True))
        assert est.estimate(pc, True).low_confidence

    def test_raw_is_counter_value(self):
        est = JRSEstimator(threshold=7)
        pc = 0x40
        for _ in range(4):
            est.train(pc, True, True, est.estimate(pc, True))
        assert est.estimate(pc, True).raw == 4.0


class TestIndexing:
    def test_history_contexts_are_separate(self):
        est = JRSEstimator(entries=256, threshold=3, history_length=8)
        pc = 0x40
        for _ in range(5):
            est.train(pc, True, True, est.estimate(pc, True))
        # A different history context maps to a different counter.
        est.shift_history(True)
        est.shift_history(False)
        assert est.estimate(pc, True).low_confidence

    def test_enhanced_separates_predictions(self):
        est = JRSEstimator(entries=256, threshold=3, enhanced=True)
        pc = 0x40
        for _ in range(5):
            est.train(pc, True, True, est.estimate(pc, True))
        # Same pc+history but opposite prediction: different counter.
        assert not est.estimate(pc, True).low_confidence
        assert est.estimate(pc, False).low_confidence

    def test_original_ignores_prediction(self):
        est = JRSEstimator(entries=256, threshold=3, enhanced=False)
        pc = 0x40
        for _ in range(5):
            est.train(pc, True, True, est.estimate(pc, True))
        assert not est.estimate(pc, False).low_confidence


class TestBehaviorOnStreams:
    def test_high_coverage_low_accuracy_profile(self, simple_trace):
        """JRS flags aggressively: most mispredicts covered, many false
        positives (the Table 3 JRS signature)."""
        from repro.core.frontend import FrontEnd
        from repro.predictors.hybrid import make_baseline_hybrid

        frontend = FrontEnd(make_baseline_hybrid(), JRSEstimator(threshold=7))
        result = frontend.replay(simple_trace, warmup=1500)
        matrix = result.metrics.overall
        assert matrix.spec > 0.6
        assert matrix.pvn < 0.5

    def test_reset(self):
        est = JRSEstimator(threshold=3)
        pc = 0x40
        for _ in range(5):
            est.train(pc, True, True, est.estimate(pc, True))
        est.shift_history(True)
        est.reset()
        assert est.history.bits == 0
        assert est.estimate(pc, True).low_confidence

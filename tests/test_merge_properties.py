"""Property tests: accumulators must merge like a monoid.

The segmented executor relies on two algebraic facts about the metrics
layer, checked here with hypothesis over arbitrary event streams and
cut points:

- **associativity** -- how a stream is split into segments cannot
  change the merged result;
- **order independence of the counters** -- the confusion-matrix and
  counter fields commute (the ordered raw-output lists are the one
  documented exception: they concatenate in operand order, which is
  exactly what in-order segment merging needs).
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontend import FrontEndEvent, FrontEndResult, aggregate_event
from repro.core.metrics import MetricsCollector
from repro.core.reversal import BranchAction, PolicyDecision
from repro.core.types import ConfidenceSignal
from repro.pipeline.stats import SimStats

_ACTIONS = (BranchAction.NORMAL, BranchAction.GATE, BranchAction.REVERSE)


@st.composite
def events(draw):
    pc = draw(st.sampled_from([0x400, 0x404, 0x408, 0x40C]))
    taken = draw(st.booleans())
    prediction = draw(st.booleans())
    action = draw(st.sampled_from(_ACTIONS))
    final = (not prediction) if action is BranchAction.REVERSE else prediction
    level = draw(st.integers(min_value=0, max_value=2))
    raw = float(draw(st.integers(min_value=-64, max_value=64)))
    ctor = (
        ConfidenceSignal.high,
        ConfidenceSignal.weak_low,
        ConfidenceSignal.strong_low,
    )[level]
    return FrontEndEvent(
        pc=pc,
        taken=taken,
        prediction=prediction,
        final_prediction=final,
        signal=ctor(raw),
        decision=PolicyDecision(action, final),
        uops_before=draw(st.integers(min_value=0, max_value=20)),
    )


def _fold(stream, collect_outputs=True):
    result = FrontEndResult()
    for event in stream:
        aggregate_event(result, event, collect_outputs)
    return result


def _counters(result):
    return (
        result.branches,
        result.mispredictions,
        result.final_mispredictions,
        result.reversals,
        result.reversals_correcting,
        result.reversals_breaking,
        result.metrics.overall.as_dict(),
    )


class TestFrontEndResultMerge:
    @given(
        stream=st.lists(events(), max_size=60),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_segmentation_merges_to_monolithic(self, stream, data):
        monolithic = _fold(stream)
        cut_a = data.draw(st.integers(min_value=0, max_value=len(stream)))
        cut_b = data.draw(st.integers(min_value=cut_a, max_value=len(stream)))
        merged = (
            _fold(stream[:cut_a])
            .merge(_fold(stream[cut_a:cut_b]))
            .merge(_fold(stream[cut_b:]))
        )
        assert _counters(merged) == _counters(monolithic)
        assert merged.outputs_correct == monolithic.outputs_correct
        assert merged.outputs_mispredicted == monolithic.outputs_mispredicted

    @given(
        stream=st.lists(events(), max_size=60),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, stream, data):
        cut_a = data.draw(st.integers(min_value=0, max_value=len(stream)))
        cut_b = data.draw(st.integers(min_value=cut_a, max_value=len(stream)))
        a = _fold(stream[:cut_a])
        b = _fold(stream[cut_a:cut_b])
        c = _fold(stream[cut_b:])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert _counters(left) == _counters(right)
        assert left.outputs_correct == right.outputs_correct
        assert left.outputs_mispredicted == right.outputs_mispredicted

    @given(stream_a=st.lists(events(), max_size=40),
           stream_b=st.lists(events(), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_counters_commute(self, stream_a, stream_b):
        a, b = _fold(stream_a), _fold(stream_b)
        assert _counters(a.merge(b)) == _counters(b.merge(a))

    def test_merge_leaves_operands_untouched(self):
        a = FrontEndResult(branches=3, mispredictions=1)
        b = FrontEndResult(branches=2)
        a.merge(b)
        assert (a.branches, b.branches) == (3, 2)


class TestMetricsCollectorMerge:
    @given(
        records=st.lists(
            st.tuples(
                st.sampled_from([0x10, 0x20, 0x30]),
                st.booleans(),
                st.booleans(),
            ),
            max_size=50,
        ),
        data=st.data(),
        per_pc=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_segmented_recording_merges_exactly(self, records, data, per_pc):
        cut = data.draw(st.integers(min_value=0, max_value=len(records)))
        monolithic = MetricsCollector(track_per_pc=per_pc)
        for pc, low, mis in records:
            monolithic.record(pc, low, mis)

        first = MetricsCollector(track_per_pc=per_pc)
        second = MetricsCollector(track_per_pc=per_pc)
        for pc, low, mis in records[:cut]:
            first.record(pc, low, mis)
        for pc, low, mis in records[cut:]:
            second.record(pc, low, mis)
        merged = first.merge(second)

        assert merged.overall.as_dict() == monolithic.overall.as_dict()
        assert {
            pc: m.as_dict() for pc, m in merged.per_pc.items()
        } == {pc: m.as_dict() for pc, m in monolithic.per_pc.items()}


class TestSimStatsMerge:
    @given(
        values=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            ),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative_and_commutative(self, values):
        stats = [
            SimStats(
                branches=b,
                mispredictions=m,
                total_cycles=c,
                gated_cycles=c / 2,
            )
            for b, m, c in values
        ]
        a, b, c = stats
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        # Integer counters are exactly associative; cycle floats are
        # associative up to rounding (the engine merges segments in one
        # fixed order, so rounding is also deterministic there).
        assert (left.branches, left.mispredictions) == (
            right.branches,
            right.mispredictions,
        )
        assert left.total_cycles == pytest.approx(right.total_cycles)
        assert left.gated_cycles == pytest.approx(right.gated_cycles)
        ab, ba = a.merge(b), b.merge(a)
        assert (ab.branches, ab.mispredictions) == (ba.branches, ba.mispredictions)
        assert ab.total_cycles == pytest.approx(ba.total_cycles)

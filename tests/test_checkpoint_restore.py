"""Checkpoint/restore round-trips: resume must be invisible.

For every verify-matrix configuration, a front end trained on a trace
prefix is checkpointed, a *fresh* front end restores the snapshot, and
both replay the suffix in lockstep -- events and final state digests
must be identical.  The pipeline simulator gets the same treatment via
its resume-delta contract.
"""

import pytest

from repro.core.frontend import FrontEnd
from repro.pipeline.config import PipelineConfig
from repro.pipeline.simulator import PipelineSimulator
from repro.verify.matrix import CASES

CUT = 900


def _build(case):
    return FrontEnd(
        case.predictor.build(), case.estimator.build(), case.policy.build()
    )


@pytest.mark.parametrize("case", CASES, ids=[c.label for c in CASES])
def test_frontend_checkpoint_resume_is_invisible(case, simple_trace):
    trace = simple_trace.slice(0, 2000)
    continued = _build(case)
    for record in trace.slice(0, CUT):
        continued.process(record)
    predictor_snapshot = continued.predictor.checkpoint()
    estimator_snapshot = continued.estimator.checkpoint()

    resumed = _build(case)
    resumed.predictor.restore(predictor_snapshot)
    resumed.estimator.restore(estimator_snapshot)

    for record in trace.slice(CUT, 2000):
        assert continued.process(record) == resumed.process(record)
    assert (
        continued.predictor.state_digest() == resumed.predictor.state_digest()
    )
    assert (
        continued.estimator.state_digest() == resumed.estimator.state_digest()
    )


@pytest.mark.parametrize("case", CASES, ids=[c.label for c in CASES])
def test_checkpoint_is_a_pure_snapshot(case, simple_trace):
    """Taking a checkpoint must not perturb the component it snapshots."""
    frontend = _build(case)
    for record in simple_trace.slice(0, 300):
        frontend.process(record)
    before_p = frontend.predictor.state_digest()
    before_e = frontend.estimator.state_digest()
    frontend.predictor.checkpoint()
    frontend.estimator.checkpoint()
    assert frontend.predictor.state_digest() == before_p
    assert frontend.estimator.state_digest() == before_e


def test_restore_rejects_foreign_snapshot():
    case = CASES[0]
    frontend = _build(case)
    with pytest.raises(ValueError):
        frontend.predictor.restore(("not", "a", "checkpoint"))
    with pytest.raises(ValueError):
        frontend.estimator.restore(("bogus",))


class TestPipelineSimulatorResume:
    def _events(self, simple_trace):
        case = CASES[3]  # perceptron-cic-l0, gating policy: exercises stalls
        frontend = _build(case)
        return [frontend.process(r) for r in simple_trace.slice(0, 1200)]

    def test_resumed_chain_merges_to_monolithic(self, simple_trace):
        events = self._events(simple_trace)
        config = PipelineConfig()

        mono = PipelineSimulator(config).simulate(events)

        chained = PipelineSimulator(config)
        first = chained.simulate(events[:500])
        snapshot = chained.checkpoint()

        resumed = PipelineSimulator(config)
        resumed.restore(snapshot)
        second = resumed.simulate(events[500:], resume=True)

        merged = first.merge(second)
        assert merged.branches == mono.branches
        assert merged.correct_path_uops == mono.correct_path_uops
        assert merged.wrong_path_uops == mono.wrong_path_uops
        assert merged.mispredictions == mono.mispredictions
        assert merged.gating_stalls == mono.gating_stalls
        assert merged.total_cycles == pytest.approx(mono.total_cycles)
        assert merged.gated_cycles == pytest.approx(mono.gated_cycles)
        assert merged.squash_cycles == pytest.approx(mono.squash_cycles)

    def test_restore_rejects_foreign_snapshot(self):
        simulator = PipelineSimulator(PipelineConfig())
        with pytest.raises(ValueError):
            simulator.restore(("front_end", 1, 2))

"""Unit tests for repro.common.perceptron.PerceptronArray."""

import numpy as np
import pytest

from repro.common.perceptron import PerceptronArray


def pm1(bits, length):
    return np.array([1 if (bits >> i) & 1 else -1 for i in range(length)], dtype=np.int8)


class TestConstruction:
    def test_paper_default_storage(self):
        # 128 entries x 32-bit history x 8-bit weights ~ the paper's 4KB
        # (the bias weight adds 128 bytes on top of the 4KB data array).
        arr = PerceptronArray(entries=128, history_length=32, weight_bits=8)
        assert arr.storage_bits == 128 * 33 * 8

    def test_weight_range(self):
        arr = PerceptronArray(4, 4, weight_bits=8)
        assert arr.weight_range == (-128, 127)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerceptronArray(0, 4)
        with pytest.raises(ValueError):
            PerceptronArray(4, 0)
        with pytest.raises(ValueError):
            PerceptronArray(4, 65)
        with pytest.raises(ValueError):
            PerceptronArray(4, 4, weight_bits=1)


class TestIndexing:
    def test_index_drops_byte_offset(self):
        arr = PerceptronArray(entries=128, history_length=4)
        assert arr.index(0x400000) == arr.index(0x400000 + 128 * 4)
        assert arr.index(0x400000) != arr.index(0x400004)

    def test_rows_independent(self):
        arr = PerceptronArray(entries=8, history_length=4)
        x = pm1(0b1111, 4)
        arr.train(0x0, x, 1)
        assert arr.output(0x0, x) > 0
        assert arr.output(0x4, x) == 0


class TestOutput:
    def test_zero_initial_output(self):
        arr = PerceptronArray(8, 8)
        assert arr.output(0, pm1(0b10101010, 8)) == 0

    def test_dot_product(self):
        arr = PerceptronArray(1, 2)
        arr.train(0, pm1(0b11, 2), 1)  # w = [1, 1, 1]
        assert arr.output(0, pm1(0b11, 2)) == 3
        assert arr.output(0, pm1(0b00, 2)) == 1 - 1 - 1

    def test_accepts_longer_input(self):
        arr = PerceptronArray(1, 2)
        arr.train(0, pm1(0b11, 4), 1)
        assert arr.output(0, pm1(0b11, 4)) == 3

    def test_rejects_short_input(self):
        arr = PerceptronArray(1, 8)
        with pytest.raises(ValueError):
            arr.output(0, pm1(0b1, 4))


class TestTraining:
    def test_target_validation(self):
        arr = PerceptronArray(1, 2)
        with pytest.raises(ValueError):
            arr.train(0, pm1(0b11, 2), 0)

    def test_training_moves_output_toward_target(self):
        arr = PerceptronArray(1, 8)
        x = pm1(0b1100_0011, 8)
        before = arr.output(0, x)
        arr.train(0, x, 1)
        assert arr.output(0, x) > before
        arr.train(0, x, -1)
        arr.train(0, x, -1)
        assert arr.output(0, x) < before

    def test_weights_saturate(self):
        arr = PerceptronArray(1, 4, weight_bits=4)  # range [-8, 7]
        x = pm1(0b1111, 4)
        for _ in range(100):
            arr.train(0, x, 1)
        assert arr.weights_for(0).max() == 7
        for _ in range(200):
            arr.train(0, x, -1)
        assert arr.weights_for(0).min() == -8

    def test_max_output_bound(self):
        arr = PerceptronArray(1, 4, weight_bits=4)
        x = pm1(0b1111, 4)
        for _ in range(100):
            arr.train(0, x, 1)
        assert abs(arr.output(0, x)) <= arr.max_output

    def test_learns_single_bit_correlation(self):
        # Outcome = history bit 2; perceptron must separate the classes.
        arr = PerceptronArray(1, 8)
        rng = np.random.default_rng(1)
        for _ in range(200):
            bits = int(rng.integers(0, 256))
            x = pm1(bits, 8)
            target = 1 if (bits >> 2) & 1 else -1
            arr.train(0, x, target)
        hits = 0
        for bits in range(256):
            x = pm1(bits, 8)
            predicted = arr.output(0, x) >= 0
            if predicted == bool((bits >> 2) & 1):
                hits += 1
        assert hits >= 250

    def test_cannot_learn_parity(self):
        # XOR of two bits is not linearly separable -- the classic
        # single-layer perceptron limitation.
        arr = PerceptronArray(1, 8)
        rng = np.random.default_rng(2)
        for _ in range(2000):
            bits = int(rng.integers(0, 256))
            x = pm1(bits, 8)
            target = 1 if ((bits >> 1) ^ (bits >> 4)) & 1 else -1
            arr.train(0, x, target)
        hits = 0
        for bits in range(256):
            x = pm1(bits, 8)
            predicted = arr.output(0, x) >= 0
            if predicted == bool(((bits >> 1) ^ (bits >> 4)) & 1):
                hits += 1
        assert hits < 200  # nowhere near separation

    def test_reset(self):
        arr = PerceptronArray(2, 4)
        arr.train(0, pm1(0b1111, 4), 1)
        arr.reset()
        assert (arr.snapshot() == 0).all()

    def test_snapshot_is_copy(self):
        arr = PerceptronArray(2, 4)
        snap = arr.snapshot()
        snap[:] = 5
        assert arr.output(0, pm1(0, 4)) == 0

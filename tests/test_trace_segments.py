"""Segment iteration, the on-disk segment format, and record streams."""

import pytest

from repro.trace.benchmarks import benchmark_record_stream, generate_benchmark_trace
from repro.trace.generator import TraceGenerator
from repro.trace.record import BranchRecord, Trace
from repro.trace.segments import (
    SegmentedTrace,
    iter_record_segments,
    save_segmented,
    segment_bounds,
)
from tests.conftest import make_simple_workload


class TestSegmentBounds:
    def test_exact_division(self):
        assert segment_bounds(10, 5) == [(0, 5), (5, 10)]

    def test_short_final_segment(self):
        assert segment_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_oversized_segment(self):
        assert segment_bounds(3, 100) == [(0, 3)]

    def test_size_one(self):
        assert segment_bounds(3, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_zero_branches(self):
        assert segment_bounds(0, 8) == []

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            segment_bounds(10, 0)
        with pytest.raises(ValueError):
            segment_bounds(-1, 5)


class TestIterRecordSegments:
    def test_covers_stream_in_order(self, simple_trace):
        segments = list(iter_record_segments(simple_trace, 1000))
        assert [len(s) for s in segments] == [1000, 1000, 1000, 1000]
        flat = [r for seg in segments for r in seg]
        assert flat == list(simple_trace)

    def test_lazy_on_unbounded_stream(self):
        def endless():
            pc = 0x1000
            while True:
                yield BranchRecord(pc=pc, taken=True, uops_before=1)

        it = iter_record_segments(endless(), 7)
        first = next(it)
        assert len(first) == 7  # pulled exactly one segment, no hang

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            next(iter_record_segments([], 0))


class TestSegmentedTraceFormat:
    def test_roundtrip(self, tmp_path, simple_trace):
        directory = str(tmp_path / "seg")
        seg = save_segmented(simple_trace, directory, segment_size=1500)
        assert seg.n_branches == len(simple_trace)
        assert seg.n_segments == 3
        assert seg.bounds(0) == (0, 1500)
        assert seg.bounds(2) == (3000, 4000)
        assert list(seg.iter_records()) == list(simple_trace)
        loaded = seg.load()
        assert loaded.name == simple_trace.name
        assert loaded.seed == simple_trace.seed

    def test_reopen_reads_only_index(self, tmp_path, simple_trace):
        directory = str(tmp_path / "seg")
        save_segmented(simple_trace, directory, segment_size=1000)
        reopened = SegmentedTrace(directory)
        assert len(reopened) == len(simple_trace)
        assert reopened.segment(1)[0] == simple_trace[1000]

    def test_n_branches_bounds_unbounded_stream(self, tmp_path):
        spec = make_simple_workload()
        stream = TraceGenerator(spec, seed=9).iter_records()
        seg = save_segmented(
            stream, str(tmp_path / "seg"), segment_size=64, n_branches=200
        )
        assert seg.n_branches == 200
        assert [seg.bounds(i) for i in range(seg.n_segments)] == [
            (0, 64), (64, 128), (128, 192), (192, 200),
        ]

    def test_missing_index_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SegmentedTrace(str(tmp_path))


class TestBenchmarkRecordStream:
    def test_prefix_matches_materialized_trace(self):
        from itertools import islice

        trace = generate_benchmark_trace("gzip", n_branches=500, seed=11)
        stream = list(islice(benchmark_record_stream("gzip", seed=11), 500))
        assert stream == list(trace)

    def test_distinct_seeds_diverge(self):
        from itertools import islice

        a = list(islice(benchmark_record_stream("gzip", seed=1), 300))
        b = list(islice(benchmark_record_stream("gzip", seed=2), 300))
        assert a != b


class TestIngestedEdgeCases:
    """Regressions for externally-produced (non-generated) record lists.

    Ingested traces reach :func:`save_segmented` without a generator's
    invariants, so the format must round-trip inputs a generator never
    emits: pcs wider than 64 bits and empty record lists.
    """

    def test_oversized_pc_round_trips(self, tmp_path):
        wide = (1 << 70) + 5
        records = [
            BranchRecord(pc=0x400000, taken=True),
            BranchRecord(pc=wide, taken=False),
            BranchRecord(pc=wide + 4, taken=True),
        ]
        trace = save_segmented(records, str(tmp_path / "seg"), segment_size=2)
        assert [(r.pc, r.taken) for r in trace.iter_records()] == [
            (r.pc, r.taken) for r in records
        ]
        reopened = SegmentedTrace(str(tmp_path / "seg"))
        assert [r.pc for r in reopened.load()] == [r.pc for r in records]
        assert reopened.job_token() == trace.job_token()

    def test_zero_length_trace_round_trips(self, tmp_path):
        trace = save_segmented([], str(tmp_path / "seg"), segment_size=8)
        assert len(trace) == 0
        assert trace.n_segments == 0
        assert list(trace.iter_records()) == []
        reopened = SegmentedTrace(str(tmp_path / "seg"))
        assert len(reopened) == 0
        assert len(reopened.load()) == 0
        assert reopened.job_token() == trace.job_token()

"""Property-based tests for the vectorized fast-path kernels.

Each kernel claims sequential equivalence with a scalar reference
structure from :mod:`repro.common` / :mod:`repro.core`; hypothesis
hunts for counterexamples with adversarial index collisions, rail
saturation and degenerate sizes that the benchmark-driven equivalence
suite would hit only by luck.  Weight widths are kept tiny here on
purpose: a 2-bit weight hits its rails within a handful of updates,
which forces the SWAR passes through their exact slow path constantly.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bits import fold_bits, mix_hash
from repro.common.counters import CounterTable
from repro.common.history import GlobalHistoryRegister
from repro.common.perceptron import PerceptronArray
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.fastpath.kernels import (
    conflict_free_chunks,
    counter_batch_update,
    final_history_bits,
    fold_u64,
    history_bits,
    mix_hash_u64,
    perceptron_batch_outputs,
    perceptron_batch_train,
    prev_occurrence,
    swar_cic_pass,
    swar_direction_pass,
    swar_supported,
)
from repro.predictors.perceptron_predictor import jimenez_lin_theta

# Update streams against small tables: collisions are the common case.
_COUNTER_EVENTS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15), st.booleans()),
    max_size=200,
)

# (row, taken, correct) streams for the perceptron kernels.
_PERCEPTRON_EVENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3), st.booleans(), st.booleans()
    ),
    max_size=150,
)


class TestHashAndHistoryKernels:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 62) - 1), max_size=50),
        st.integers(min_value=1, max_value=32),
    )
    def test_fold_matches_scalar(self, values, width):
        arr = np.array(values, dtype=np.uint64)
        expected = [fold_bits(v, width) for v in values]
        assert fold_u64(arr, width).tolist() == expected

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=50))
    def test_mix_hash_matches_scalar(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [mix_hash(v) for v in values]
        assert mix_hash_u64(arr).tolist() == expected

    @given(
        st.lists(st.booleans(), min_size=1, max_size=120),
        st.integers(min_value=1, max_value=24),
    )
    def test_history_bits_match_ghr(self, outcomes, length):
        ghr = GlobalHistoryRegister(length)
        expected = []
        for taken in outcomes:
            expected.append(ghr.bits)  # pre-branch view, as the kernels use
            ghr.push(taken)
        takens = np.array(outcomes, dtype=np.uint8)
        assert history_bits(takens, length).tolist() == expected
        assert final_history_bits(takens, length) == ghr.bits


class TestChunkKernels:
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=100))
    def test_prev_occurrence_definition(self, indices):
        arr = np.array(indices, dtype=np.int64)
        prev = prev_occurrence(arr).tolist()
        for i, value in enumerate(indices):
            earlier = [j for j in range(i) if indices[j] == value]
            assert prev[i] == (earlier[-1] if earlier else -1)

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=100))
    def test_chunks_partition_and_are_conflict_free(self, indices):
        arr = np.array(indices, dtype=np.int64)
        chunks = conflict_free_chunks(arr)
        flattened = [i for start, end in chunks for i in range(start, end)]
        assert flattened == list(range(len(indices)))
        for start, end in chunks:
            chunk = indices[start:end]
            assert len(set(chunk)) == len(chunk)

    @given(_COUNTER_EVENTS, st.integers(min_value=1, max_value=4))
    def test_saturating_updates_match_counter_table(self, events, bits):
        self._check_mode(events, bits, "saturating")

    @given(_COUNTER_EVENTS, st.integers(min_value=1, max_value=4))
    def test_resetting_updates_match_counter_table(self, events, bits):
        self._check_mode(events, bits, "resetting")

    def _check_mode(self, events, bits, mode):
        reference = CounterTable(entries=16, bits=bits, mode=mode, initial=0)
        for index, up in events:
            reference.update(index, up)
        table = np.zeros(16, dtype=np.int32)
        indices = np.array([i for i, _ in events], dtype=np.int64)
        ups = np.array([up for _, up in events], dtype=bool)
        counter_batch_update(
            table, indices, ups, mode=mode, max_value=(1 << bits) - 1
        )
        assert table.tolist() == reference.snapshot().tolist()
        assert int(table.min(initial=0)) >= 0
        assert int(table.max(initial=0)) <= (1 << bits) - 1

    @given(_PERCEPTRON_EVENTS, st.integers(min_value=1, max_value=6))
    def test_batch_train_matches_sequential_array(self, events, length):
        reference = PerceptronArray(
            entries=4, history_length=length, weight_bits=2
        )
        w_min, w_max = reference.weight_range
        rng = np.random.default_rng(7)
        xs = rng.choice(
            np.array([-1, 1], dtype=np.int8), size=(len(events), length)
        )
        for (row, taken, _), x in zip(events, xs):
            reference.train(row * 4, x, 1 if taken else -1)
        weights = np.zeros((4, length + 1), dtype=np.int32)
        rows = np.array([row for row, _, _ in events], dtype=np.int64)
        targets = np.array(
            [1 if taken else -1 for _, taken, _ in events], dtype=np.int32
        )
        perceptron_batch_train(weights, rows, xs, targets, w_min, w_max)
        assert np.array_equal(weights, reference.snapshot())
        assert int(weights.min(initial=0)) >= w_min
        assert int(weights.max(initial=0)) <= w_max
        outputs = perceptron_batch_outputs(weights, rows[:4], xs[:4])
        for out, row, x in zip(outputs.tolist(), rows[:4], xs[:4]):
            assert out == reference.output(int(row) * 4, x)


class TestSwarPasses:
    """The big-int SWAR passes against the real estimator, step by step.

    ``pc = row * 4`` makes ``PerceptronArray.index`` return ``row``
    exactly, so both sides train the same rows.
    """

    @given(
        _PERCEPTRON_EVENTS,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=6),
    )
    @settings(deadline=None)
    def test_cic_pass_matches_estimator(self, events, length, training):
        assert swar_supported(length, 2)
        reference = PerceptronConfidenceEstimator(
            entries=4,
            history_length=length,
            weight_bits=2,
            threshold=0,
            training_threshold=training,
        )
        expected = []
        pops = []
        history = 0
        for row, taken, correct in events:
            pops.append(bin(history).count("1"))
            signal = reference.estimate(row * 4, prediction=True)
            expected.append(int(signal.raw))
            reference.train(row * 4, True, correct, signal)
            reference.shift_history(taken)
            history = ((history << 1) | int(taken)) & ((1 << length) - 1)
        w_min, w_max = reference.array.weight_range
        ys, weights = swar_cic_pass(
            rows=[row for row, _, _ in events],
            correct=[correct for _, _, correct in events],
            takens=[int(taken) for _, taken, _ in events],
            pops=pops,
            n_rows=4,
            history_length=length,
            threshold=0,
            training_threshold=training,
            w_min=w_min,
            w_max=w_max,
        )
        assert ys == expected
        assert np.array_equal(weights, reference.array.snapshot())

    @given(
        _PERCEPTRON_EVENTS,
        st.integers(min_value=1, max_value=8),
    )
    @settings(deadline=None)
    def test_direction_pass_matches_tnt_estimator(self, events, length):
        reference = PerceptronConfidenceEstimator(
            entries=4,
            history_length=length,
            weight_bits=2,
            threshold=0,
            mode="tnt",
        )
        expected = []
        pops = []
        history = 0
        for row, taken, correct in events:
            pops.append(bin(history).count("1"))
            # tnt trains toward ``prediction if correct else not
            # prediction``; choosing the prediction accordingly makes
            # the effective direction the resolved outcome, exactly as
            # the front end produces it.
            prediction = taken if correct else not taken
            signal = reference.estimate(row * 4, prediction)
            expected.append(int(signal.raw))
            reference.train(row * 4, prediction, correct, signal)
            reference.shift_history(taken)
            history = ((history << 1) | int(taken)) & ((1 << length) - 1)
        w_min, w_max = reference.array.weight_range
        ys, weights = swar_direction_pass(
            rows=[row for row, _, _ in events],
            takens=[int(taken) for _, taken, _ in events],
            pops=pops,
            n_rows=4,
            history_length=length,
            theta=jimenez_lin_theta(length),
            w_min=w_min,
            w_max=w_max,
        )
        assert ys == expected
        assert np.array_equal(weights, reference.array.snapshot())

    def test_swar_support_boundary(self):
        # Exact iff every 16-bit lane sum stays below 2**16, within the
        # 64-bit history register and 16-bit stored-weight limits.
        assert swar_supported(32, 8)
        assert swar_supported(64, 8)
        assert not swar_supported(65, 8)
        assert not swar_supported(40, 12)
        assert not swar_supported(0, 8)
        assert not swar_supported(32, 1)
        assert not swar_supported(32, 17)

"""Offline calibration of benchmark class weights.

Thin driver over :mod:`repro.trace.calibration` (the solver lives in
the library).  Prints ready-to-paste weight dicts for
``src/repro/trace/benchmarks.py``; run after changing behaviour
mechanics:

    python tools/calibrate.py [benchmark ...]
"""

import sys

from repro.trace.benchmarks import BENCHMARK_NAMES, benchmark_profile
from repro.trace.calibration import calibrate_profile


def main() -> int:
    names = sys.argv[1:] or list(BENCHMARK_NAMES)
    final = {}
    for name in names:
        result = calibrate_profile(
            benchmark_profile(name), n_branches=60_000, warmup=20_000
        )
        final[name] = result.profile.class_weights
        print(
            f"{name:8s} measured={result.measured_rate:.4f} "
            f"target={result.target_rate:.4f} ratio={result.ratio:.2f} "
            f"({result.iterations} iterations)"
        )
        print(f"  -> {result.profile.class_weights}")
    print("\n# FINAL WEIGHTS")
    for name, weights in final.items():
        print(f"{name!r}: {weights},")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

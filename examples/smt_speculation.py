#!/usr/bin/env python
"""SMT speculation control: convert one thread's waste into the other's work.

The paper motivates confidence estimation partly through SMT: wrong-path
fetch slots could feed another thread.  This example co-schedules two
benchmarks on the two-thread SMT front end and compares combined
throughput with and without confidence-directed fetch (a thread whose
unresolved low-confidence branches reach the threshold yields its
slots).

Run:  python examples/smt_speculation.py [thread_a] [thread_b]
"""

import sys

from repro.engine import GATING_POLICY, EstimatorSpec, SimJob, get_engine
from repro.pipeline.config import BASELINE_40X4
from repro.pipeline.smt import SmtSimulator


def describe(label, stats, names):
    print(f"{label}:")
    print(
        f"  combined throughput : {stats.throughput:.3f} uops/cycle "
        f"over {stats.total_cycles:.0f} cycles"
    )
    print(f"  wasted fetch        : {stats.wasted_fraction:.1%}")
    for name, thread in zip(names, stats.threads):
        print(
            f"  {name:<8} correct={thread.correct_uops:>8}  "
            f"wrong-path={thread.wrong_path_uops:>10.0f}  "
            f"gated cycles={thread.gated_cycles}"
        )


def main() -> None:
    name_a = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    name_b = sys.argv[2] if len(sys.argv) > 2 else "gcc"
    print(f"co-scheduling {name_a!r} (thread A) with {name_b!r} (thread B)\n")

    estimator = EstimatorSpec.of("perceptron", threshold=0)
    outcomes = get_engine().run(
        [
            SimJob(
                benchmark=name, n_branches=60_000, warmup=0, seed=1,
                estimator=estimator, policy=GATING_POLICY,
            )
            for name in (name_a, name_b)
        ]
    )
    events_a, events_b = outcomes[0].events, outcomes[1].events
    config = BASELINE_40X4.with_gating(1)

    baseline = SmtSimulator(config, gate_yields=False).simulate(
        events_a, events_b
    )
    controlled = SmtSimulator(config, gate_yields=True).simulate(
        events_a, events_b
    )

    describe("baseline SMT (no speculation control)", baseline,
             (name_a, name_b))
    print()
    describe("confidence-directed fetch", controlled, (name_a, name_b))

    gain = 100.0 * (
        controlled.throughput - baseline.throughput
    ) / baseline.throughput
    print(f"\ncombined throughput gain: {gain:+.1f}%")
    print(
        "expected shape: pairs with a mispredict-heavy thread (mcf) gain "
        "the most;\nclean pairs gain little."
    )


if __name__ == "__main__":
    main()

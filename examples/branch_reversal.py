#!/usr/bin/env python
"""Branch reversal walkthrough (Section 5.5).

Shows why correct/incorrect training enables reversal: plots (as text)
the cic output density split by prediction outcome, locates the
empirical region where mispredictions dominate, then applies the
three-region policy (reverse / gate / pass) and reports the outcome
against gating alone.

Run:  python examples/branch_reversal.py [benchmark]
"""

import sys

from repro import FrontEnd, generate_benchmark_trace
from repro.analysis.density import OutputDensity
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.reversal import GatingOnlyPolicy, ThreeRegionPolicy
from repro.pipeline.config import BASELINE_40X4
from repro.pipeline.runner import compare_policies
from repro.predictors.hybrid import make_baseline_hybrid


def text_histogram(density, bins=24, width=50):
    """Two-column ASCII density plot (CB vs MB per output bin)."""
    edges, cb, mb = density.histogram(bins=bins)
    cb_max, mb_max = max(cb.max(), 1), max(mb.max(), 1)
    lines = ["output      CB                         | MB"]
    for i in range(bins):
        centre = (edges[i] + edges[i + 1]) / 2
        cb_bar = "#" * int(width * cb[i] / cb_max / 2)
        mb_bar = "*" * int(width * mb[i] / mb_max / 2)
        lines.append(f"{centre:8.0f}  {cb_bar:<25}| {mb_bar}")
    return "\n".join(lines)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    n_branches, warmup = 100_000, 33_000
    trace = generate_benchmark_trace(benchmark, n_branches=n_branches, seed=1)

    # Step 1: collect the output density (Figure 4/5 analysis).
    frontend = FrontEnd(
        make_baseline_hybrid(),
        PerceptronConfidenceEstimator(threshold=0),
        collect_outputs=True,
    )
    result = frontend.run(trace, warmup=warmup)
    density = OutputDensity.from_frontend_result(result)
    print(f"perceptron_cic output density on {benchmark!r}:")
    print(text_histogram(density))

    crossover = density.crossover_output()
    print(f"\nempirical crossover (MB > CB) at output ~ {crossover}")

    # Step 2: pick thresholds from the density, as Section 5.5 does.
    reverse_at = crossover if crossover is not None else 40.0
    gate_at = -90.0
    reversal_region = density.region(reverse_at, float("inf"))
    print(
        f"region y>{reverse_at:.0f}: {reversal_region.mispredicted} MB vs "
        f"{reversal_region.correct} CB "
        f"(mispredict fraction {reversal_region.mispredict_fraction:.0%})"
    )

    # Step 3: combined policy vs gating alone.
    combined = compare_policies(
        trace,
        make_baseline_hybrid,
        lambda: PerceptronConfidenceEstimator(
            threshold=gate_at, strong_threshold=reverse_at
        ),
        ThreeRegionPolicy(),
        BASELINE_40X4.with_gating(2),
        warmup=warmup,
    )
    gating_only = compare_policies(
        trace,
        make_baseline_hybrid,
        lambda: PerceptronConfidenceEstimator(threshold=gate_at),
        GatingOnlyPolicy(),
        BASELINE_40X4.with_gating(2),
        warmup=warmup,
    )

    stats = combined.policy.stats
    print(
        f"\nreversals: {stats.reversals} "
        f"({stats.reversals_correcting} fixed, "
        f"{stats.reversals_breaking} broken)"
    )
    print(
        f"gating alone   : U = {gating_only.uop_reduction_pct:5.1f}%   "
        f"P = {gating_only.performance_loss_pct:5.1f}%"
    )
    print(
        f"gating+reversal: U = {combined.uop_reduction_pct:5.1f}%   "
        f"P = {combined.performance_loss_pct:5.1f}%"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Branch reversal walkthrough (Section 5.5).

Shows why correct/incorrect training enables reversal: plots (as text)
the cic output density split by prediction outcome, locates the
empirical region where mispredictions dominate, then applies the
three-region policy (reverse / gate / pass) and reports the outcome
against gating alone.  All replays go through the engine, so the
density pass and the policy passes share one generated trace.

Run:  python examples/branch_reversal.py [benchmark]
"""

import sys

from repro.analysis.density import OutputDensity
from repro.engine import (
    GATING_POLICY,
    THREE_REGION_POLICY,
    EstimatorSpec,
    SimJob,
    get_engine,
)
from repro.pipeline.config import BASELINE_40X4


def text_histogram(density, bins=24, width=50):
    """Two-column ASCII density plot (CB vs MB per output bin)."""
    edges, cb, mb = density.histogram(bins=bins)
    cb_max, mb_max = max(cb.max(), 1), max(mb.max(), 1)
    lines = ["output      CB                         | MB"]
    for i in range(bins):
        centre = (edges[i] + edges[i + 1]) / 2
        cb_bar = "#" * int(width * cb[i] / cb_max / 2)
        mb_bar = "*" * int(width * mb[i] / mb_max / 2)
        lines.append(f"{centre:8.0f}  {cb_bar:<25}| {mb_bar}")
    return "\n".join(lines)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    n_branches, warmup = 100_000, 33_000
    engine = get_engine()
    base_job = SimJob(
        benchmark=benchmark, n_branches=n_branches, warmup=warmup, seed=1
    )

    # Step 1: collect the output density (Figure 4/5 analysis).
    result = engine.replay(
        base_job.with_(
            estimator=EstimatorSpec.of("perceptron", threshold=0),
            collect_outputs=True,
        )
    ).result
    density = OutputDensity.from_frontend_result(result)
    print(f"perceptron_cic output density on {benchmark!r}:")
    print(text_histogram(density))

    crossover = density.crossover_output()
    print(f"\nempirical crossover (MB > CB) at output ~ {crossover}")

    # Step 2: pick thresholds from the density, as Section 5.5 does.
    reverse_at = crossover if crossover is not None else 40.0
    gate_at = -90.0
    reversal_region = density.region(reverse_at, float("inf"))
    print(
        f"region y>{reverse_at:.0f}: {reversal_region.mispredicted} MB vs "
        f"{reversal_region.correct} CB "
        f"(mispredict fraction {reversal_region.mispredict_fraction:.0%})"
    )

    # Step 3: combined policy vs gating alone, on one shared baseline.
    baseline_events, combined_events, gating_events = (
        o.events
        for o in engine.run(
            [
                base_job,
                base_job.with_(
                    estimator=EstimatorSpec.of(
                        "perceptron",
                        threshold=gate_at,
                        strong_threshold=float(reverse_at),
                    ),
                    policy=THREE_REGION_POLICY,
                ),
                base_job.with_(
                    estimator=EstimatorSpec.of("perceptron", threshold=gate_at),
                    policy=GATING_POLICY,
                ),
            ]
        )
    )
    machine = BASELINE_40X4.with_gating(2)
    base = engine.simulate(baseline_events, BASELINE_40X4)
    combined = engine.simulate(combined_events, machine)
    gating_only = engine.simulate(gating_events, machine)

    def u_and_p(stats):
        u = 100.0 * (
            base.total_uops_executed - stats.total_uops_executed
        ) / base.total_uops_executed
        p = 100.0 * (stats.total_cycles - base.total_cycles) / base.total_cycles
        return u, p

    print(
        f"\nreversals: {combined.reversals} "
        f"({combined.reversals_correcting} fixed, "
        f"{combined.reversals_breaking} broken)"
    )
    for label, stats in (("gating alone   ", gating_only),
                         ("gating+reversal", combined)):
        u, p = u_and_p(stats)
        print(f"{label}: U = {u:5.1f}%   P = {p:5.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: estimate branch confidence on a synthetic benchmark.

Builds the paper's setup declaratively: a :class:`SimJob` names the
workload (a SPECint2000-like trace), the Table 1 baseline hybrid
predictor, and the perceptron confidence estimator; the engine replays
it (cached -- run this twice and the second run is instant) and
reports the Section 2.2 quality metrics.

Run:  python examples/quickstart.py [benchmark] [n_branches]
"""

import sys

from repro.engine import EstimatorSpec, SimJob, get_engine


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    n_branches = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000

    job = SimJob(
        benchmark=benchmark,
        n_branches=n_branches,
        warmup=n_branches // 3,
        seed=1,
        estimator=EstimatorSpec.of("perceptron", threshold=0),
    )
    print(f"job fingerprint: {job.fingerprint[:16]}...")

    engine = get_engine()
    trace = engine.trace(*job.trace_key)
    stats = trace.stats()
    print(
        f"  {stats.branches} branches, {stats.total_uops} uops, "
        f"{stats.taken_fraction:.0%} taken, "
        f"{stats.static_branches} static branches"
    )

    predictor = job.predictor.build()
    estimator = job.estimator.build()
    print(
        f"replaying through {predictor.name} "
        f"({predictor.storage_kib:.0f} KiB) + {estimator.name} "
        f"({estimator.storage_kib:.1f} KiB)..."
    )

    result = engine.replay(job).result
    matrix = result.metrics.overall

    print()
    print(f"branches measured     : {result.branches}")
    print(f"misprediction rate    : {result.misprediction_rate:.2%}")
    print(f"flagged low confidence: {matrix.flagged_low} "
          f"({matrix.flagged_low / matrix.total:.2%} of branches)")
    print(f"PVN (accuracy)        : {matrix.pvn:.1%}  "
          "(probability a low-confidence flag is right)")
    print(f"Spec (coverage)       : {matrix.spec:.1%}  "
          "(share of mispredicts flagged)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: estimate branch confidence on a synthetic benchmark.

Builds the paper's setup in a few lines: a SPECint2000-like trace, the
Table 1 baseline hybrid predictor, and the perceptron confidence
estimator, then reports the Section 2.2 quality metrics.

Run:  python examples/quickstart.py [benchmark] [n_branches]
"""

import sys

from repro import (
    FrontEnd,
    PerceptronConfidenceEstimator,
    generate_benchmark_trace,
    make_baseline_hybrid,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    n_branches = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    warmup = n_branches // 3

    print(f"generating {benchmark!r} trace ({n_branches} branches)...")
    trace = generate_benchmark_trace(benchmark, n_branches=n_branches, seed=1)
    stats = trace.stats()
    print(
        f"  {stats.branches} branches, {stats.total_uops} uops, "
        f"{stats.taken_fraction:.0%} taken, "
        f"{stats.static_branches} static branches"
    )

    predictor = make_baseline_hybrid()
    estimator = PerceptronConfidenceEstimator(threshold=0)
    print(
        f"replaying through {predictor.name} "
        f"({predictor.storage_kib:.0f} KiB) + {estimator.name} "
        f"({estimator.storage_kib:.1f} KiB)..."
    )

    result = FrontEnd(predictor, estimator).run(trace, warmup=warmup)
    matrix = result.metrics.overall

    print()
    print(f"branches measured     : {result.branches}")
    print(f"misprediction rate    : {result.misprediction_rate:.2%}")
    print(f"flagged low confidence: {matrix.flagged_low} "
          f"({matrix.flagged_low / matrix.total:.2%} of branches)")
    print(f"PVN (accuracy)        : {matrix.pvn:.1%}  "
          "(probability a low-confidence flag is right)")
    print(f"Spec (coverage)       : {matrix.spec:.1%}  "
          "(share of mispredicts flagged)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Pipeline-gating design study: the U-vs-P frontier.

Sweeps the perceptron confidence estimator's threshold and the
low-confidence branch-counter threshold (PL) on a chosen machine,
reporting the reduction in executed uops (U) against the performance
loss (P) for each design point -- the exploration behind Table 4's
"spectrum of interesting design options".

Run:  python examples/pipeline_gating_study.py [benchmark] [machine]
      machine in {20c4w, 20c8w, 40c4w}
"""

import sys

from repro import format_table, generate_benchmark_trace
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.reversal import GatingOnlyPolicy
from repro.pipeline.config import PIPELINE_PRESETS
from repro.pipeline.runner import compare_policies
from repro.predictors.hybrid import make_baseline_hybrid

THRESHOLDS = (25, 0, -25, -50, -75)
COUNTERS = (1, 2)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    machine = sys.argv[2] if len(sys.argv) > 2 else "40c4w"
    config = PIPELINE_PRESETS[machine]
    n_branches, warmup = 60_000, 20_000

    print(f"workload {benchmark!r} on the {config.label()} machine")
    trace = generate_benchmark_trace(benchmark, n_branches=n_branches, seed=1)

    rows = []
    for pl in COUNTERS:
        for threshold in THRESHOLDS:
            run = compare_policies(
                trace,
                make_baseline_hybrid,
                lambda t=threshold: PerceptronConfidenceEstimator(threshold=t),
                GatingOnlyPolicy(),
                config.with_gating(pl),
                warmup=warmup,
            )
            rows.append(
                {
                    "lambda": threshold,
                    "PL": pl,
                    "U %": round(run.uop_reduction_pct, 1),
                    "P %": round(run.performance_loss_pct, 1),
                    "stalls": run.policy.stats.gating_stalls,
                    "wrong-path saved": round(
                        run.policy.stats.wrong_path_uops_saved
                    ),
                }
            )

    print(format_table(rows, title="Gating design-space frontier"))
    best = max(
        (r for r in rows if r["P %"] <= 1.0),
        key=lambda r: r["U %"],
        default=None,
    )
    if best:
        print(
            f"\nbest design point at <=1% loss: lambda={best['lambda']}, "
            f"PL{best['PL']} -> {best['U %']}% fewer uops executed"
        )
    else:
        print("\nno design point achieved <=1% loss at this trace size")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Pipeline-gating design study: the U-vs-P frontier.

Sweeps the perceptron confidence estimator's threshold and the
low-confidence branch-counter threshold (PL) on a chosen machine,
reporting the reduction in executed uops (U) against the performance
loss (P) for each design point -- the exploration behind Table 4's
"spectrum of interesting design options".

Each estimator threshold is replayed exactly once through the engine;
both PL values reuse the same cached event stream, since PL only
affects the pipeline timing model, not the front-end replay.

Run:  python examples/pipeline_gating_study.py [benchmark] [machine]
      machine in {20c4w, 20c8w, 40c4w}
"""

import sys

from repro import format_table
from repro.engine import (
    ALWAYS_HIGH,
    GATING_POLICY,
    EstimatorSpec,
    SimJob,
    get_engine,
)
from repro.pipeline.config import PIPELINE_PRESETS

THRESHOLDS = (25, 0, -25, -50, -75)
COUNTERS = (1, 2)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    machine = sys.argv[2] if len(sys.argv) > 2 else "40c4w"
    config = PIPELINE_PRESETS[machine]
    n_branches, warmup = 60_000, 20_000

    print(f"workload {benchmark!r} on the {config.label()} machine")
    base_job = SimJob(
        benchmark=benchmark, n_branches=n_branches, warmup=warmup, seed=1,
        estimator=ALWAYS_HIGH,
    )
    jobs = [base_job] + [
        base_job.with_(
            estimator=EstimatorSpec.of("perceptron", threshold=t),
            policy=GATING_POLICY,
        )
        for t in THRESHOLDS
    ]
    engine = get_engine()
    outcomes = engine.run(jobs)
    base = engine.simulate(outcomes[0].events, config)

    rows = []
    for pl in COUNTERS:
        gated = config.with_gating(pl)
        for threshold, outcome in zip(THRESHOLDS, outcomes[1:]):
            stats = engine.simulate(outcome.events, gated)
            rows.append(
                {
                    "lambda": threshold,
                    "PL": pl,
                    "U %": round(
                        100.0
                        * (base.total_uops_executed - stats.total_uops_executed)
                        / base.total_uops_executed,
                        1,
                    ),
                    "P %": round(
                        100.0 * (stats.total_cycles - base.total_cycles)
                        / base.total_cycles,
                        1,
                    ),
                    "stalls": stats.gating_stalls,
                    "wrong-path saved": round(stats.wrong_path_uops_saved),
                }
            )

    print(format_table(rows, title="Gating design-space frontier"))
    best = max(
        (r for r in rows if r["P %"] <= 1.0),
        key=lambda r: r["U %"],
        default=None,
    )
    if best:
        print(
            f"\nbest design point at <=1% loss: lambda={best['lambda']}, "
            f"PL{best['PL']} -> {best['U %']}% fewer uops executed"
        )
    else:
        print("\nno design point achieved <=1% loss at this trace size")


if __name__ == "__main__":
    main()

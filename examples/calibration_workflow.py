#!/usr/bin/env python
"""Workload calibration walkthrough.

Shows the full loop a user follows when adding or modifying a synthetic
benchmark: measure the per-class misprediction composition, re-solve
the class weights against the Table 2 target, verify convergence, and
inspect the resulting accuracy/coverage curves with the curve tools.

Run:  python examples/calibration_workflow.py [benchmark]
"""

import sys

from repro import format_table, generate_benchmark_trace, make_baseline_hybrid
from repro.analysis.curves import ConfidenceCurve, area_under_curve, dominates
from repro.analysis.sweep import sweep_estimator_thresholds
from repro.core.jrs import JRSEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.trace.benchmarks import benchmark_profile
from repro.trace.calibration import calibrate_profile, measure_profile


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    profile = benchmark_profile(name)

    # Step 1: measure the current per-class composition.
    print(f"measuring {name!r} composition under the baseline hybrid...")
    measurement = measure_profile(profile, n_branches=30_000, warmup=10_000)
    rows = [
        {
            "class": cls,
            "dyn share %": round(100 * measurement.shares.get(cls, 0), 2),
            "mispredict %": round(100 * measurement.rates.get(cls, 0), 1),
        }
        for cls in sorted(measurement.shares)
    ]
    print(format_table(rows, title="per-class composition"))
    target = profile.mispredict_target_per_kuop * profile.uops_per_branch / 1000
    print(
        f"overall: {measurement.overall_rate:.2%} "
        f"(Table 2 target {target:.2%})"
    )

    # Step 2: re-solve and verify convergence.
    print("\nre-calibrating...")
    result = calibrate_profile(profile, n_branches=30_000, warmup=10_000)
    print(
        f"converged={result.converged} after {result.iterations} iterations "
        f"(measured/target = {result.ratio:.2f})"
    )

    # Step 3: curve-level comparison on the calibrated workload.
    trace = generate_benchmark_trace(name, n_branches=40_000, seed=1)
    jrs_curve = ConfidenceCurve.from_threshold_points(
        sweep_estimator_thresholds(
            trace,
            make_baseline_hybrid,
            lambda t: JRSEstimator(threshold=int(t)),
            thresholds=(3, 7, 11, 15),
            warmup=13_000,
        ),
        name="enhanced JRS",
    )
    perc_curve = ConfidenceCurve.from_threshold_points(
        sweep_estimator_thresholds(
            trace,
            make_baseline_hybrid,
            lambda t: PerceptronConfidenceEstimator(threshold=t),
            thresholds=(25, 0, -25, -50),
            warmup=13_000,
        ),
        name="perceptron",
    )
    print(
        f"\ncurve summary: perceptron AUC {area_under_curve(perc_curve):.2f} "
        f"vs JRS AUC {area_under_curve(jrs_curve):.2f}"
    )
    print(
        "perceptron dominates JRS on overlapping coverage: "
        f"{dominates(perc_curve, jrs_curve)}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Compare every confidence estimator in the paper's lineage.

Replays one benchmark through the original JRS, enhanced JRS, Smith
self-confidence, Tyson pattern-based, and perceptron (cic and tnt)
estimators, printing one accuracy/coverage row per estimator -- an
extended version of the paper's Table 3 comparison.

Run:  python examples/compare_estimators.py [benchmark]
"""

import sys

from repro import FrontEnd, format_table, generate_benchmark_trace
from repro.core.frontend import FrontEndResult
from repro.core.jrs import JRSEstimator
from repro.core.pattern import PatternEstimator
from repro.core.perceptron_estimator import PerceptronConfidenceEstimator
from repro.core.smith import SmithEstimator
from repro.predictors.hybrid import make_baseline_hybrid
from repro.predictors.local import LocalPredictor


def measure(trace, warmup, estimator, substrate=None, predictor=None):
    """Replay the trace; ``substrate`` (the pattern estimator's PAs
    predictor) observes every branch alongside the main predictor; the
    Smith estimator passes its host as ``predictor`` so it reads the
    live counters it classifies."""
    frontend = FrontEnd(predictor or make_baseline_hybrid(), estimator)
    result = FrontEndResult()
    for i, rec in enumerate(trace):
        event = frontend.process(rec)
        if substrate is not None:
            substrate.update(rec.pc, rec.taken, substrate.predict(rec.pc))
        if i >= warmup:
            frontend.aggregate(result, event)
    return result.metrics.overall


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    n_branches, warmup = 60_000, 20_000
    trace = generate_benchmark_trace(benchmark, n_branches=n_branches, seed=1)

    local = LocalPredictor()
    smith_host = make_baseline_hybrid()
    candidates = [
        ("JRS (original)", JRSEstimator(threshold=7, enhanced=False), None),
        ("enhanced JRS", JRSEstimator(threshold=7, enhanced=True), None),
        ("Smith", SmithEstimator(smith_host), None),
        ("Tyson pattern", PatternEstimator(local), local),
        ("perceptron_tnt",
         PerceptronConfidenceEstimator(threshold=30, mode="tnt"), None),
        ("perceptron_cic",
         PerceptronConfidenceEstimator(threshold=0, mode="cic"), None),
    ]

    rows = []
    for name, estimator, substrate in candidates:
        predictor = smith_host if name == "Smith" else None
        matrix = measure(trace, warmup, estimator, substrate, predictor)
        rows.append(
            {
                "estimator": name,
                "PVN %": round(100 * matrix.pvn, 1),
                "Spec %": round(100 * matrix.spec, 1),
                "flagged %": round(
                    100 * matrix.flagged_low / max(matrix.total, 1), 2
                ),
                "storage KiB": round(estimator.storage_kib, 2),
            }
        )

    print(
        format_table(
            rows,
            title=(
                f"Confidence estimator comparison on {benchmark!r} "
                f"({n_branches} branches, {warmup} warm-up)"
            ),
        )
    )
    print(
        "\nExpected shape (Table 3): perceptron_cic leads on PVN, "
        "enhanced JRS leads on Spec,\nSmith/pattern/tnt trail both."
    )


if __name__ == "__main__":
    main()
